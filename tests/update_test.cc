#include <gtest/gtest.h>

#include "db/update.h"
#include "db/value.h"

namespace quaestor::db {
namespace {

Value Doc(const char* json) {
  auto v = Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

TEST(UpdateTest, SetCreatesAndOverwrites) {
  Value doc = Doc(R"({"a":1})");
  Update u;
  u.Set("a", Value(2)).Set("b.c", Value("x"));
  ASSERT_TRUE(u.ApplyTo(doc).ok());
  EXPECT_EQ(doc.Find("a")->as_int(), 2);
  EXPECT_EQ(doc.Find("b.c")->as_string(), "x");
}

TEST(UpdateTest, UnsetRemoves) {
  Value doc = Doc(R"({"a":1,"b":{"c":2}})");
  Update u;
  u.Unset("b.c");
  ASSERT_TRUE(u.ApplyTo(doc).ok());
  EXPECT_EQ(doc.Find("b.c"), nullptr);
  EXPECT_NE(doc.Find("a"), nullptr);
}

TEST(UpdateTest, UnsetMissingIsNoop) {
  Value doc = Doc(R"({"a":1})");
  Update u;
  u.Unset("zzz");
  ASSERT_TRUE(u.ApplyTo(doc).ok());
  EXPECT_EQ(doc, Doc(R"({"a":1})"));
}

TEST(UpdateTest, IncIntegers) {
  Value doc = Doc(R"({"n":5})");
  Update u;
  u.Inc("n", Value(3));
  ASSERT_TRUE(u.ApplyTo(doc).ok());
  ASSERT_TRUE(doc.Find("n")->is_int());
  EXPECT_EQ(doc.Find("n")->as_int(), 8);
}

TEST(UpdateTest, IncCreatesFromZero) {
  Value doc = Doc("{}");
  Update u;
  u.Inc("n", Value(7));
  ASSERT_TRUE(u.ApplyTo(doc).ok());
  EXPECT_EQ(doc.Find("n")->as_int(), 7);
}

TEST(UpdateTest, IncMixedBecomesDouble) {
  Value doc = Doc(R"({"n":1})");
  Update u;
  u.Inc("n", Value(0.5));
  ASSERT_TRUE(u.ApplyTo(doc).ok());
  EXPECT_DOUBLE_EQ(doc.Find("n")->as_number(), 1.5);
}

TEST(UpdateTest, IncNonNumberFails) {
  Value doc = Doc(R"({"n":"text"})");
  Update u;
  u.Inc("n", Value(1));
  EXPECT_FALSE(u.ApplyTo(doc).ok());
  // Document unchanged on failure.
  EXPECT_EQ(doc.Find("n")->as_string(), "text");
}

TEST(UpdateTest, PushAppends) {
  Value doc = Doc(R"({"tags":["a"]})");
  Update u;
  u.Push("tags", Value("b"));
  ASSERT_TRUE(u.ApplyTo(doc).ok());
  EXPECT_EQ(doc.Find("tags")->as_array().size(), 2u);
  EXPECT_EQ(doc.Find("tags.1")->as_string(), "b");
}

TEST(UpdateTest, PushCreatesArray) {
  Value doc = Doc("{}");
  Update u;
  u.Push("tags", Value("x"));
  ASSERT_TRUE(u.ApplyTo(doc).ok());
  EXPECT_EQ(doc.Find("tags")->as_array().size(), 1u);
}

TEST(UpdateTest, PushOnScalarFails) {
  Value doc = Doc(R"({"tags":1})");
  Update u;
  u.Push("tags", Value("x"));
  EXPECT_FALSE(u.ApplyTo(doc).ok());
}

TEST(UpdateTest, PullRemovesAllMatches) {
  Value doc = Doc(R"({"tags":["a","b","a"]})");
  Update u;
  u.Pull("tags", Value("a"));
  ASSERT_TRUE(u.ApplyTo(doc).ok());
  const Array& tags = doc.Find("tags")->as_array();
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0].as_string(), "b");
}

TEST(UpdateTest, PullFromMissingIsNoop) {
  Value doc = Doc("{}");
  Update u;
  u.Pull("tags", Value("a"));
  EXPECT_TRUE(u.ApplyTo(doc).ok());
}

TEST(UpdateTest, ActionsApplyInOrder) {
  Value doc = Doc(R"({"n":1})");
  Update u;
  u.Set("n", Value(10)).Inc("n", Value(5)).Set("m", Value(0));
  ASSERT_TRUE(u.ApplyTo(doc).ok());
  EXPECT_EQ(doc.Find("n")->as_int(), 15);
}

TEST(UpdateTest, AtomicityOnFailure) {
  Value doc = Doc(R"({"a":1,"s":"x"})");
  Update u;
  u.Set("a", Value(2)).Inc("s", Value(1));  // second action fails
  EXPECT_FALSE(u.ApplyTo(doc).ok());
  EXPECT_EQ(doc.Find("a")->as_int(), 1);  // first action rolled back
}

TEST(UpdateTest, NonObjectBodyRejected) {
  Value doc = Value(5);
  Update u;
  u.Set("a", Value(1));
  EXPECT_FALSE(u.ApplyTo(doc).ok());
}

TEST(UpdateParseTest, ParsesAllOperators) {
  auto spec = Value::FromJson(
      R"({"$set":{"a":1},"$unset":{"b":1},"$inc":{"n":2},
          "$push":{"t":"x"},"$pull":{"t":"y"}})");
  ASSERT_TRUE(spec.ok());
  auto u = Update::Parse(spec.value());
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->actions().size(), 5u);
}

TEST(UpdateParseTest, RejectsUnknownOperator) {
  auto spec = Value::FromJson(R"({"$rename":{"a":"b"}})");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(Update::Parse(spec.value()).ok());
}

TEST(UpdateParseTest, RejectsEmptyUpdate) {
  auto spec = Value::FromJson("{}");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(Update::Parse(spec.value()).ok());
}

TEST(UpdateParseTest, RejectsNonObjectOperand) {
  auto spec = Value::FromJson(R"({"$set":5})");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(Update::Parse(spec.value()).ok());
}

TEST(UpdateParseTest, ParsedUpdateApplies) {
  auto spec = Value::FromJson(R"({"$set":{"x":1},"$inc":{"n":1}})");
  ASSERT_TRUE(spec.ok());
  auto u = Update::Parse(spec.value());
  ASSERT_TRUE(u.ok());
  Value doc = Doc(R"({"n":41})");
  ASSERT_TRUE(u->ApplyTo(doc).ok());
  EXPECT_EQ(doc.Find("x")->as_int(), 1);
  EXPECT_EQ(doc.Find("n")->as_int(), 42);
}

}  // namespace
}  // namespace quaestor::db
