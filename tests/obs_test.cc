// Unit tests for the observability layer: metric key encoding, the
// counter/gauge/timer primitives, registry handle semantics, and
// snapshot diff/merge/export.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "db/value.h"
#include "obs/metrics.h"

namespace quaestor::obs {
namespace {

// ---------------------------------------------------------------------------
// EncodeMetricKey
// ---------------------------------------------------------------------------

TEST(EncodeMetricKeyTest, NoLabelsIsBareName) {
  EXPECT_EQ(EncodeMetricKey("requests", {}), "requests");
}

TEST(EncodeMetricKeyTest, LabelsSortedByKey) {
  EXPECT_EQ(EncodeMetricKey("hits", {{"tier", "cdn"}, {"op", "read"}}),
            "hits{op=read,tier=cdn}");
  // Same labels, different order → same identity.
  EXPECT_EQ(EncodeMetricKey("hits", {{"op", "read"}, {"tier", "cdn"}}),
            EncodeMetricKey("hits", {{"tier", "cdn"}, {"op", "read"}}));
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, HandlesAreStableAcrossLookups) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("ops", {{"op", "read"}});
  Counter* c2 = reg.GetCounter("ops", {{"op", "read"}});
  EXPECT_EQ(c1, c2);
  // Label order must not mint a second instance.
  Counter* c3 = reg.GetCounter("x", {{"a", "1"}, {"b", "2"}});
  Counter* c4 = reg.GetCounter("x", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(c3, c4);
  // A different label value is a different instance.
  EXPECT_NE(c1, reg.GetCounter("ops", {{"op", "write"}}));
}

TEST(MetricsRegistryTest, CountersGaugesTimersRoundTrip) {
  MetricsRegistry reg;
  reg.Count("ops");
  reg.Count("ops", 4);
  reg.SetGauge("hit_rate", 0.75);
  reg.Observe("latency_ms", 5.0);
  reg.Observe("latency_ms", 15.0);

  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("ops"), 5u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("hit_rate"), 0.75);
  EXPECT_EQ(snap.timers.at("latency_ms").count(), 2u);
  EXPECT_DOUBLE_EQ(snap.timers.at("latency_ms").sum(), 20.0);
}

TEST(MetricsRegistryTest, ConcurrentCountsAreLossless) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("n");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&reg, c] {
      for (int i = 0; i < 10000; ++i) {
        c->Add();
        reg.Count("via_name");
      }
    });
  }
  for (auto& th : threads) th.join();
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("n"), 40000u);
  EXPECT_EQ(snap.counters.at("via_name"), 40000u);
}

// ---------------------------------------------------------------------------
// Snapshot diff / merge / export
// ---------------------------------------------------------------------------

TEST(MetricsSnapshotTest, DiffSinceSubtractsCountersAndTimers) {
  MetricsRegistry reg;
  reg.Count("ops", 10);
  reg.Observe("lat", 1.0);
  const MetricsSnapshot before = reg.Snapshot();

  reg.Count("ops", 7);
  reg.Count("fresh", 2);  // absent in `before` — passes through whole
  reg.SetGauge("g", 3.0);
  reg.Observe("lat", 9.0);
  const MetricsSnapshot after = reg.Snapshot();

  const MetricsSnapshot delta = after.DiffSince(before);
  EXPECT_EQ(delta.counters.at("ops"), 7u);
  EXPECT_EQ(delta.counters.at("fresh"), 2u);
  EXPECT_DOUBLE_EQ(delta.gauges.at("g"), 3.0);  // gauges: latest value
  EXPECT_EQ(delta.timers.at("lat").count(), 1u);
  EXPECT_DOUBLE_EQ(delta.timers.at("lat").sum(), 9.0);
}

TEST(MetricsSnapshotTest, MergeAccumulates) {
  MetricsRegistry a;
  a.Count("ops", 3);
  a.Observe("lat", 2.0);
  MetricsRegistry b;
  b.Count("ops", 4);
  b.Count("only_b", 1);
  b.Observe("lat", 8.0);

  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.counters.at("ops"), 7u);
  EXPECT_EQ(merged.counters.at("only_b"), 1u);
  EXPECT_EQ(merged.timers.at("lat").count(), 2u);
  EXPECT_DOUBLE_EQ(merged.timers.at("lat").sum(), 10.0);
}

TEST(MetricsSnapshotTest, ToValueShape) {
  MetricsRegistry reg;
  reg.Count("ops", 2);
  reg.SetGauge("rate", 0.5);
  reg.Observe("lat", 4.0);

  const db::Value v = reg.Snapshot().ToValue();
  ASSERT_TRUE(v.is_object());
  const db::Object& root = v.as_object();
  ASSERT_TRUE(root.count("counters"));
  ASSERT_TRUE(root.count("gauges"));
  ASSERT_TRUE(root.count("timers"));
  EXPECT_EQ(root.at("counters").as_object().at("ops").as_int(), 2);
  EXPECT_DOUBLE_EQ(root.at("gauges").as_object().at("rate").as_double(), 0.5);
  const db::Object& lat = root.at("timers").as_object().at("lat").as_object();
  EXPECT_EQ(lat.at("count").as_int(), 1);
  EXPECT_DOUBLE_EQ(lat.at("sum").as_double(), 4.0);
  for (const char* field : {"min", "max", "mean", "p50", "p90", "p99"}) {
    EXPECT_TRUE(lat.count(field)) << field;
  }
  // db::Object keys are sorted → the JSON string is deterministic.
  EXPECT_EQ(reg.Snapshot().ToJson(), reg.Snapshot().ToJson());
}

TEST(MetricsSnapshotTest, EmptyDetectsAnyContent) {
  MetricsSnapshot s;
  EXPECT_TRUE(s.empty());
  MetricsRegistry reg;
  reg.Count("x");
  EXPECT_FALSE(reg.Snapshot().empty());
}

}  // namespace
}  // namespace quaestor::obs
