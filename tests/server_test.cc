#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "core/query_result.h"
#include "core/server.h"
#include "db/database.h"

namespace quaestor::core {
namespace {

constexpr Micros kSecond = kMicrosPerSecond;

db::Value Doc(const char* json) {
  auto v = db::Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

db::Query Q(const char* table, const char* filter) {
  auto q = db::Query::ParseJson(table, filter);
  EXPECT_TRUE(q.ok());
  return q.value();
}

// ---------------------------------------------------------------------------
// QueryResponse wire format
// ---------------------------------------------------------------------------

TEST(QueryResponseTest, ObjectListRoundTrip) {
  QueryResponse qr;
  qr.representation = ttl::ResultRepresentation::kObjectList;
  qr.ids = {"t/a", "t/b"};
  qr.docs = {Doc(R"({"x":1})"), Doc(R"({"x":2})")};
  qr.versions = {3, 7};
  qr.record_ttls = {1000, 2000};
  auto parsed = QueryResponse::FromJson(qr.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->ids, qr.ids);
  EXPECT_EQ(parsed->versions, qr.versions);
  EXPECT_EQ(parsed->record_ttls, qr.record_ttls);
  EXPECT_EQ(parsed->docs[1], qr.docs[1]);
  EXPECT_EQ(parsed->ComputeEtag(), qr.ComputeEtag());
}

TEST(QueryResponseTest, IdListRoundTrip) {
  QueryResponse qr;
  qr.representation = ttl::ResultRepresentation::kIdList;
  qr.ids = {"t/a", "t/b", "t/c"};
  auto parsed = QueryResponse::FromJson(qr.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->representation, ttl::ResultRepresentation::kIdList);
  EXPECT_EQ(parsed->ids, qr.ids);
  EXPECT_TRUE(parsed->docs.empty());
}

TEST(QueryResponseTest, EtagChangesWithVersions) {
  QueryResponse a;
  a.representation = ttl::ResultRepresentation::kObjectList;
  a.ids = {"t/a"};
  a.versions = {1};
  QueryResponse b = a;
  b.versions = {2};
  EXPECT_NE(a.ComputeEtag(), b.ComputeEtag());
}

TEST(QueryResponseTest, IdListEtagIgnoresVersions) {
  QueryResponse a;
  a.representation = ttl::ResultRepresentation::kIdList;
  a.ids = {"t/a"};
  a.versions = {1};
  QueryResponse b = a;
  b.versions = {2};
  EXPECT_EQ(a.ComputeEtag(), b.ComputeEtag());
}

TEST(QueryResponseTest, RejectsMalformed) {
  EXPECT_FALSE(QueryResponse::FromJson("not json").ok());
  EXPECT_FALSE(QueryResponse::FromJson("[]").ok());
  EXPECT_FALSE(QueryResponse::FromJson(R"({"ids":[1]})").ok());
  EXPECT_FALSE(
      QueryResponse::FromJson(R"({"rep":"objects","ids":["a"]})").ok());
}

// ---------------------------------------------------------------------------
// QuaestorServer
// ---------------------------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : clock_(0), db_(&clock_) {}

  void MakeServer(ServerOptions options = ServerOptions()) {
    server_ = std::make_unique<QuaestorServer>(&clock_, &db_, options);
    server_->AddPurgeTarget(
        [this](const std::string& key) { purged_.push_back(key); });
  }

  webcache::HttpResponse Get(const std::string& key) {
    webcache::HttpRequest req;
    req.key = key;
    return server_->Fetch(req);
  }

  webcache::HttpResponse GetQuery(const db::Query& q) {
    server_->RegisterQueryShape(q);
    return Get(q.NormalizedKey());
  }

  SimulatedClock clock_;
  db::Database db_;
  std::unique_ptr<QuaestorServer> server_;
  std::vector<std::string> purged_;
};

TEST_F(ServerTest, RecordFetchServesBodyAndTtl) {
  MakeServer();
  ASSERT_TRUE(server_->Insert("t", "1", Doc(R"({"x":1})")).ok());
  auto resp = Get("t/1");
  ASSERT_TRUE(resp.ok);
  EXPECT_GT(resp.ttl, 0);
  EXPECT_EQ(resp.etag, 1u);  // insert creates version 1
  EXPECT_EQ(resp.body, Doc(R"({"x":1})").ToJson());
}

TEST_F(ServerTest, RecordFetchMissing404) {
  MakeServer();
  EXPECT_FALSE(Get("t/none").ok);
  EXPECT_FALSE(Get("malformed-key").ok);
}

TEST_F(ServerTest, RecordConditionalFetch304) {
  MakeServer();
  ASSERT_TRUE(server_->Insert("t", "1", Doc(R"({"x":1})")).ok());
  auto first = Get("t/1");
  webcache::HttpRequest req;
  req.key = "t/1";
  req.has_if_none_match = true;
  req.if_none_match = first.etag;
  auto second = server_->Fetch(req);
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.not_modified);
  EXPECT_TRUE(second.body.empty());
  EXPECT_EQ(server_->stats().not_modified, 1u);
}

TEST_F(ServerTest, WriteMakesCachedRecordStaleAndPurges) {
  MakeServer();
  ASSERT_TRUE(server_->Insert("t", "1", Doc(R"({"x":1})")).ok());
  (void)Get("t/1");  // issues a TTL → tracked in the EBF
  clock_.Advance(1 * kSecond);
  purged_.clear();
  db::Update u;
  u.Set("x", db::Value(2));
  ASSERT_TRUE(server_->Update("t", "1", u).ok());
  EXPECT_TRUE(server_->ebf().IsStale("t/1"));
  ASSERT_FALSE(purged_.empty());
  EXPECT_EQ(purged_[0], "t/1");
  EXPECT_TRUE(server_->BloomSnapshot().MaybeContains("t/1"));
}

TEST_F(ServerTest, QueryFetchReturnsObjectList) {
  MakeServer();
  ASSERT_TRUE(server_->Insert("t", "1", Doc(R"({"g":1})")).ok());
  ASSERT_TRUE(server_->Insert("t", "2", Doc(R"({"g":1})")).ok());
  ASSERT_TRUE(server_->Insert("t", "3", Doc(R"({"g":2})")).ok());
  auto resp = GetQuery(Q("t", R"({"g":1})"));
  ASSERT_TRUE(resp.ok);
  EXPECT_GT(resp.ttl, 0);
  auto qr = QueryResponse::FromJson(resp.body);
  ASSERT_TRUE(qr.ok());
  EXPECT_EQ(qr->representation, ttl::ResultRepresentation::kObjectList);
  EXPECT_EQ(qr->ids, (std::vector<std::string>{"t/1", "t/2"}));
  EXPECT_EQ(qr->docs.size(), 2u);
}

TEST_F(ServerTest, UnknownQueryKeyIs404) {
  MakeServer();
  EXPECT_FALSE(Get("q:t?g $eq 1").ok);
}

TEST_F(ServerTest, QueryRegistersInInvalidb) {
  MakeServer();
  ASSERT_TRUE(server_->Insert("t", "1", Doc(R"({"g":1})")).ok());
  db::Query q = Q("t", R"({"g":1})");
  (void)GetQuery(q);
  EXPECT_TRUE(server_->invalidb().IsRegistered(q.NormalizedKey()));
  EXPECT_TRUE(server_->active_list().IsRegistered(q.NormalizedKey()));
}

TEST_F(ServerTest, InvalidationFlowEndToEnd) {
  // The Figure 7 pipeline: cache query → write a matching record →
  // InvaliDB detects → EBF flags the query → CDN purge issued.
  MakeServer();
  ASSERT_TRUE(server_->Insert("t", "1", Doc(R"({"g":1})")).ok());
  db::Query q = Q("t", R"({"g":1})");
  (void)GetQuery(q);
  clock_.Advance(1 * kSecond);
  purged_.clear();

  db::Update u;
  u.Set("g", db::Value(2));  // leaves the result set
  ASSERT_TRUE(server_->Update("t", "1", u).ok());

  const std::string key = q.NormalizedKey();
  EXPECT_TRUE(server_->ebf().IsStale(key));
  EXPECT_TRUE(server_->BloomSnapshot().MaybeContains(key));
  EXPECT_NE(std::find(purged_.begin(), purged_.end(), key), purged_.end());
  EXPECT_GE(server_->stats().query_invalidations, 1u);
}

TEST_F(ServerTest, NonMatchingWriteDoesNotInvalidateQuery) {
  MakeServer();
  ASSERT_TRUE(server_->Insert("t", "1", Doc(R"({"g":1})")).ok());
  ASSERT_TRUE(server_->Insert("t", "2", Doc(R"({"g":9})")).ok());
  db::Query q = Q("t", R"({"g":1})");
  (void)GetQuery(q);
  clock_.Advance(1 * kSecond);
  db::Update u;
  u.Set("x", db::Value(1));  // t/2 never matched and still doesn't
  ASSERT_TRUE(server_->Update("t", "2", u).ok());
  EXPECT_FALSE(server_->ebf().IsStale(q.NormalizedKey()));
}

TEST_F(ServerTest, QueryEtagStableAcrossIdenticalResults) {
  MakeServer();
  ASSERT_TRUE(server_->Insert("t", "1", Doc(R"({"g":1})")).ok());
  db::Query q = Q("t", R"({"g":1})");
  auto r1 = GetQuery(q);
  auto r2 = GetQuery(q);
  EXPECT_EQ(r1.etag, r2.etag);
  // Conditional fetch revalidates to 304.
  webcache::HttpRequest req;
  req.key = q.NormalizedKey();
  req.has_if_none_match = true;
  req.if_none_match = r1.etag;
  auto r3 = server_->Fetch(req);
  EXPECT_TRUE(r3.not_modified);
}

TEST_F(ServerTest, QueryTtlFeedbackViaEwma) {
  MakeServer();
  ASSERT_TRUE(server_->Insert("t", "1", Doc(R"({"g":1})")).ok());
  db::Query q = Q("t", R"({"g":1})");
  (void)GetQuery(q);
  // Invalidate after 5 s: the estimator learns the 5 s actual TTL.
  clock_.Advance(5 * kSecond);
  db::Update u;
  u.Set("g", db::Value(2));
  ASSERT_TRUE(server_->Update("t", "1", u).ok());
  EXPECT_EQ(server_->ttl_estimator().TrackedQueries(), 1u);
  const Micros learned =
      server_->ttl_estimator().QueryTtl(q.NormalizedKey(), {});
  EXPECT_EQ(learned, 5 * kSecond);
}

TEST_F(ServerTest, IdListPolicyServesIds) {
  ServerOptions opts;
  opts.representation = RepresentationPolicy::kAlwaysIdList;
  MakeServer(opts);
  ASSERT_TRUE(server_->Insert("t", "1", Doc(R"({"g":1})")).ok());
  auto resp = GetQuery(Q("t", R"({"g":1})"));
  auto qr = QueryResponse::FromJson(resp.body);
  ASSERT_TRUE(qr.ok());
  EXPECT_EQ(qr->representation, ttl::ResultRepresentation::kIdList);
  EXPECT_TRUE(qr->docs.empty());
}

TEST_F(ServerTest, CachingDisabledYieldsZeroTtl) {
  ServerOptions opts;
  opts.cache_records = false;
  opts.cache_queries = false;
  MakeServer(opts);
  ASSERT_TRUE(server_->Insert("t", "1", Doc(R"({"g":1})")).ok());
  EXPECT_EQ(Get("t/1").ttl, 0);
  EXPECT_EQ(GetQuery(Q("t", R"({"g":1})")).ttl, 0);
  // Nothing registered in InvaliDB for uncacheable queries.
  EXPECT_EQ(server_->invalidb().RegisteredCount(), 0u);
}

TEST_F(ServerTest, CapacityEvictionDeregistersAndFlagsVictim) {
  ServerOptions opts;
  opts.query_capacity = 1;
  MakeServer(opts);
  ASSERT_TRUE(server_->Insert("t", "1", Doc(R"({"g":1})")).ok());
  ASSERT_TRUE(server_->Insert("t", "2", Doc(R"({"g":2})")).ok());
  db::Query q1 = Q("t", R"({"g":1})");
  db::Query q2 = Q("t", R"({"g":2})");
  (void)GetQuery(q1);  // admitted
  EXPECT_TRUE(server_->invalidb().IsRegistered(q1.NormalizedKey()));
  // q2 becomes hotter: displaces q1.
  (void)GetQuery(q2);
  (void)GetQuery(q2);
  (void)GetQuery(q2);
  EXPECT_TRUE(server_->invalidb().IsRegistered(q2.NormalizedKey()));
  EXPECT_FALSE(server_->invalidb().IsRegistered(q1.NormalizedKey()));
  // The victim's outstanding cached copies are conservatively stale.
  EXPECT_TRUE(server_->ebf().IsStale(q1.NormalizedKey()));
}

TEST_F(ServerTest, StatefulQueryServedWindowedButRegisteredUnwindowed) {
  MakeServer();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server_
                    ->Insert("t", std::to_string(i),
                             Doc(("{\"n\":" + std::to_string(i) + "}")
                                     .c_str()))
                    .ok());
  }
  db::Query q = Q("t", "{}");
  q.SetOrderBy({{"n", false}}).SetLimit(2);
  auto resp = GetQuery(q);
  auto qr = QueryResponse::FromJson(resp.body);
  ASSERT_TRUE(qr.ok());
  EXPECT_EQ(qr->ids, (std::vector<std::string>{"t/4", "t/3"}));
  // The sorted window is tracked; a new top element invalidates it.
  clock_.Advance(1 * kSecond);
  ASSERT_TRUE(server_->Insert("t", "9", Doc(R"({"n":99})")).ok());
  EXPECT_TRUE(server_->ebf().IsStale(q.NormalizedKey()));
}

TEST_F(ServerTest, StatefulQueryNotInvalidatedByOutOfWindowChange) {
  MakeServer();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server_
                    ->Insert("t", std::to_string(i),
                             Doc(("{\"n\":" + std::to_string(i) + "}")
                                     .c_str()))
                    .ok());
  }
  db::Query q = Q("t", "{}");
  q.SetOrderBy({{"n", false}}).SetLimit(2);
  (void)GetQuery(q);
  clock_.Advance(1 * kSecond);
  // Insert below the window: window [t/4, t/3] unchanged.
  ASSERT_TRUE(server_->Insert("t", "low", Doc(R"({"n":-1})")).ok());
  EXPECT_FALSE(server_->ebf().IsStale(q.NormalizedKey()));
}

TEST_F(ServerTest, BloomSnapshotCountsRequests) {
  MakeServer();
  (void)server_->BloomSnapshot();
  (void)server_->BloomSnapshot();
  EXPECT_EQ(server_->stats().bloom_filter_requests, 2u);
}

TEST_F(ServerTest, DeleteInvalidatesQueriesAndRecord) {
  MakeServer();
  ASSERT_TRUE(server_->Insert("t", "1", Doc(R"({"g":1})")).ok());
  db::Query q = Q("t", R"({"g":1})");
  (void)GetQuery(q);
  (void)Get("t/1");
  clock_.Advance(1 * kSecond);
  ASSERT_TRUE(server_->Delete("t", "1").ok());
  EXPECT_TRUE(server_->ebf().IsStale("t/1"));
  EXPECT_TRUE(server_->ebf().IsStale(q.NormalizedKey()));
}

// Write batching must be invisible in output: the same write script run
// with batching off and on (both size- and age-triggered flushes) yields
// the same notification multiset, the same EBF flags, the same purges,
// and the same invalidation count.
TEST_F(ServerTest, WriteBatchingMatchesPerEventPath) {
  auto sig = [](const invalidb::Notification& n) {
    return n.query_key + "|" + n.record_id + "|" +
           std::to_string(static_cast<int>(n.type)) + "|" +
           std::to_string(n.new_index);
  };
  struct RunResult {
    std::vector<std::string> notifications;  // sorted sigs
    std::vector<std::string> purged;         // sorted + deduped: batching
                                             // coalesces same-key purges
                                             // within a flush by design
    size_t purge_calls = 0;
    std::vector<std::string> stale_keys;  // sorted
    uint64_t invalidations = 0;
  };
  auto run = [&](ServerOptions opts) {
    SimulatedClock clock(0);
    db::Database db(&clock);
    QuaestorServer server(&clock, &db, opts);
    RunResult r;
    server.AddPurgeTarget(
        [&](const std::string& key) { r.purged.push_back(key); });
    server.AddNotificationTap([&](const invalidb::Notification& n) {
      r.notifications.push_back(sig(n));
    });
    std::vector<db::Query> queries;
    for (int g = 0; g < 4; ++g) {
      queries.push_back(
          Q("t", ("{\"g\":" + std::to_string(g) + "}").c_str()));
    }
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(server
                      .Insert("t", "r" + std::to_string(i),
                              Doc(("{\"g\":" + std::to_string(i % 4) + "}")
                                      .c_str()))
                      .ok());
    }
    for (const db::Query& q : queries) {
      server.RegisterQueryShape(q);
      webcache::HttpRequest req;
      req.key = q.NormalizedKey();
      EXPECT_TRUE(server.Fetch(req).ok);
    }
    clock.Advance(1 * kSecond);
    r.purged.clear();
    // Deterministic churn: group moves (add+remove pairs), no-op groups
    // (g=4 matches nothing), deletes, and clock advances that trigger
    // age-based flushes mid-script when batching is on.
    for (int i = 0; i < 40; ++i) {
      const std::string id = "r" + std::to_string((i * 7) % 20);
      if (i % 9 == 8) {
        (void)server.Delete("t", id);  // may already be deleted: fine
      } else {
        db::Update u;
        u.Set("g", db::Value((i * 3) % 5));
        (void)server.Update("t", id, u);
      }
      if (i % 11 == 10) clock.Advance(2 * kMicrosPerMilli);
    }
    server.FlushChanges();
    for (const db::Query& q : queries) {
      if (server.ebf().IsStale(q.NormalizedKey())) {
        r.stale_keys.push_back(q.NormalizedKey());
      }
    }
    r.invalidations = server.stats().query_invalidations;
    std::sort(r.notifications.begin(), r.notifications.end());
    r.purge_calls = r.purged.size();
    std::sort(r.purged.begin(), r.purged.end());
    r.purged.erase(std::unique(r.purged.begin(), r.purged.end()),
                   r.purged.end());
    return r;
  };

  ServerOptions off;
  const RunResult reference = run(off);
  ASSERT_GT(reference.notifications.size(), 10u);
  ASSERT_FALSE(reference.stale_keys.empty());

  for (size_t max_batch : {4u, 64u}) {
    ServerOptions on;
    on.write_batching.enabled = true;
    on.write_batching.max_batch = max_batch;
    const RunResult batched = run(on);
    EXPECT_EQ(batched.notifications, reference.notifications)
        << "max_batch=" << max_batch;
    EXPECT_EQ(batched.purged, reference.purged) << "max_batch=" << max_batch;
    // Coalescing may only ever reduce purge traffic, never add to it.
    EXPECT_LE(batched.purge_calls, reference.purge_calls);
    EXPECT_EQ(batched.stale_keys, reference.stale_keys);
    EXPECT_EQ(batched.invalidations, reference.invalidations);
  }
}

// With batching on, a single write sits in the buffer (no notification,
// no EBF flag) until a flush: explicitly, by size, or by age.
TEST_F(ServerTest, WriteBatchingDefersUntilFlush) {
  ServerOptions opts;
  opts.write_batching.enabled = true;
  opts.write_batching.max_batch = 64;
  opts.write_batching.flush_interval = 1 * kMicrosPerMilli;
  MakeServer(opts);
  std::vector<invalidb::Notification> taps;
  server_->AddNotificationTap(
      [&](const invalidb::Notification& n) { taps.push_back(n); });
  ASSERT_TRUE(server_->Insert("t", "1", Doc(R"({"g":1})")).ok());
  server_->FlushChanges();
  db::Query q = Q("t", R"({"g":1})");
  (void)GetQuery(q);
  clock_.Advance(1 * kSecond);

  db::Update u;
  u.Set("g", db::Value(2));
  ASSERT_TRUE(server_->Update("t", "1", u).ok());
  EXPECT_TRUE(taps.empty());  // buffered, not yet matched
  EXPECT_FALSE(server_->ebf().IsStale(q.NormalizedKey()));

  EXPECT_EQ(server_->FlushChanges(), 1u);
  ASSERT_EQ(taps.size(), 1u);
  EXPECT_EQ(taps[0].type, invalidb::NotificationType::kRemove);
  EXPECT_TRUE(server_->ebf().IsStale(q.NormalizedKey()));

  // Age-triggered: a write whose buffer has an over-age oldest event
  // flushes inline.
  db::Update back;
  back.Set("g", db::Value(1));
  ASSERT_TRUE(server_->Update("t", "1", back).ok());
  clock_.Advance(2 * kMicrosPerMilli);
  db::Update again;
  again.Set("g", db::Value(3));
  ASSERT_TRUE(server_->Update("t", "1", again).ok());
  EXPECT_EQ(taps.size(), 3u);  // both buffered events delivered
  EXPECT_EQ(server_->FlushChanges(), 0u);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(AdmissionControllerTest, DisabledAdmitsEverythingStateless) {
  AdmissionController ctrl;  // enabled = false
  for (int i = 0; i < 1000; ++i) {
    Micros delay = 99;
    EXPECT_TRUE(ctrl.Admit(0, RequestContext(), &delay).ok());
    EXPECT_EQ(delay, 0);
  }
  EXPECT_EQ(ctrl.QueueDelay(0), 0);
  EXPECT_FALSE(ctrl.shedding());
  EXPECT_EQ(ctrl.stats().total_admitted(), 0u);
}

TEST(AdmissionControllerTest, QueueDelayGrowsWithAdmissions) {
  AdmissionOptions opts;
  opts.enabled = true;
  opts.max_concurrent = 2;
  opts.service_cost = 1000;
  AdmissionController ctrl(opts);
  // Two free workers absorb two requests with zero delay.
  Micros delay = 0;
  EXPECT_TRUE(ctrl.Admit(0, RequestContext(), &delay).ok());
  EXPECT_EQ(delay, 0);
  EXPECT_TRUE(ctrl.Admit(0, RequestContext(), &delay).ok());
  EXPECT_EQ(delay, 0);
  // The third waits for the earliest worker.
  EXPECT_TRUE(ctrl.Admit(0, RequestContext(), &delay).ok());
  EXPECT_EQ(delay, 1000);
  // Idle time drains the queue.
  EXPECT_EQ(ctrl.QueueDelay(10'000), 0);
}

TEST(AdmissionControllerTest, CodelEngagesOnlyAfterSustainedExcess) {
  AdmissionOptions opts;
  opts.enabled = true;
  opts.max_concurrent = 1;
  opts.service_cost = 1000;
  opts.target_queue_delay = 500;
  opts.codel_interval = 10'000;
  AdmissionController ctrl(opts);
  // Build up delay above target: each admit at t=0 adds 1000us.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ctrl.Admit(0, RequestContext(), nullptr).ok());
  }
  EXPECT_FALSE(ctrl.shedding());  // excess not yet sustained
  // Keep the queue above target past the interval: shedding engages.
  Status last = Status::OK();
  for (Micros t = 1000; t <= 20'000 && last.ok(); t += 1000) {
    last = ctrl.Admit(t, RequestContext(), nullptr);
  }
  EXPECT_TRUE(ctrl.shedding());
  EXPECT_TRUE(last.IsResourceExhausted());
  // Critical traffic still gets through in shedding mode.
  RequestContext critical;
  critical.priority = Priority::kCritical;
  EXPECT_TRUE(ctrl.Admit(20'000, critical, nullptr).ok());
  // A long idle period drains the queue and disengages shedding.
  EXPECT_TRUE(ctrl.Admit(10'000'000, RequestContext(), nullptr).ok());
  EXPECT_FALSE(ctrl.shedding());
}

TEST(AdmissionControllerTest, QueueBoundRejectsEvenCritical) {
  AdmissionOptions opts;
  opts.enabled = true;
  opts.max_concurrent = 1;
  opts.service_cost = 1000;
  opts.max_queue = 4;
  opts.target_queue_delay = 1'000'000;  // keep CoDel out of the way
  AdmissionController ctrl(opts);
  RequestContext critical;
  critical.priority = Priority::kCritical;
  Status last = Status::OK();
  int admitted = 0;
  for (int i = 0; i < 50; ++i) {
    last = ctrl.Admit(0, critical, nullptr);
    if (last.ok()) admitted++;
  }
  EXPECT_TRUE(last.IsResourceExhausted());
  // The backlog bound counts requests still holding a worker, so exactly
  // max_queue admissions fit before the hard reject.
  EXPECT_EQ(admitted, 4);
  EXPECT_GT(ctrl.stats().shed_queue_full[0], 0u);
}

TEST(AdmissionControllerTest, DoomedDeadlineRejectedWithoutCharge) {
  AdmissionOptions opts;
  opts.enabled = true;
  opts.max_concurrent = 1;
  opts.service_cost = 1000;
  opts.target_queue_delay = 1'000'000;
  AdmissionController ctrl(opts);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ctrl.Admit(0, RequestContext(), nullptr).ok());
  }
  const Micros delay_before = ctrl.QueueDelay(0);
  // Deadline shorter than the queue: rejected, queue unchanged.
  RequestContext doomed = RequestContext::WithTimeout(0, 2000);
  EXPECT_TRUE(ctrl.Admit(0, doomed, nullptr).IsDeadlineExceeded());
  EXPECT_EQ(ctrl.QueueDelay(0), delay_before);
  // A deadline that covers the wait is admitted.
  RequestContext viable = RequestContext::WithTimeout(0, 60'000);
  EXPECT_TRUE(ctrl.Admit(0, viable, nullptr).ok());
}

TEST(AdmissionControllerTest, InjectDelayStallsAllWorkers) {
  AdmissionOptions opts;
  opts.enabled = true;
  opts.max_concurrent = 4;
  opts.service_cost = 1000;
  AdmissionController ctrl(opts);
  EXPECT_EQ(ctrl.QueueDelay(0), 0);
  ctrl.InjectDelay(0, 50'000);
  EXPECT_EQ(ctrl.QueueDelay(0), 50'000);
  Micros delay = 0;
  ASSERT_TRUE(ctrl.Admit(0, RequestContext(), &delay).ok());
  EXPECT_EQ(delay, 50'000);
}

TEST_F(ServerTest, AdmissionShedsReadsUnderSustainedOverload) {
  ServerOptions opts;
  opts.admission.enabled = true;
  opts.admission.max_concurrent = 1;
  opts.admission.service_cost = 1000;
  opts.admission.target_queue_delay = 500;
  opts.admission.codel_interval = 2000;
  MakeServer(opts);
  ASSERT_TRUE(server_->Insert("t", "1", Doc(R"({"x":1})")).ok());

  // Hammer Fetch without advancing the clock much: queue delay builds,
  // CoDel engages, and normal-priority reads start coming back shed.
  bool saw_shed = false;
  for (int i = 0; i < 200; ++i) {
    clock_.Advance(100);
    auto resp = Get("t/1");
    if (!resp.ok && resp.shed) saw_shed = true;
  }
  EXPECT_TRUE(saw_shed);
  EXPECT_GT(server_->stats().shed_responses, 0u);
  EXPECT_GT(server_->admission().stats().total_shed(), 0u);
}

TEST_F(ServerTest, ExpiredDeadlineFetchFailsFastWithoutDbWork) {
  ServerOptions opts;
  opts.admission.enabled = true;
  MakeServer(opts);
  ASSERT_TRUE(server_->Insert("t", "1", Doc(R"({"x":1})")).ok());
  clock_.Advance(10 * kSecond);

  webcache::HttpRequest req;
  req.key = "t/1";
  req.context.deadline = clock_.NowMicros() - 1;  // already past
  auto resp = server_->Fetch(req);
  EXPECT_FALSE(resp.ok);
  EXPECT_TRUE(resp.deadline_exceeded);
  EXPECT_FALSE(resp.shed);
  EXPECT_EQ(server_->stats().deadline_exceeded_responses, 1u);
}

TEST_F(ServerTest, AdmissionDisabledResponsesAreByteIdentical) {
  // Same sequence against an admission-enabled-but-idle server and a
  // default server: an idle controller must not change any response.
  SimulatedClock clock_b(0);
  db::Database db_b(&clock_b);
  ServerOptions with;
  with.admission.enabled = false;
  MakeServer();  // default options
  QuaestorServer plain(&clock_b, &db_b, with);

  ASSERT_TRUE(server_->Insert("t", "1", Doc(R"({"x":1})")).ok());
  ASSERT_TRUE(plain.Insert("t", "1", Doc(R"({"x":1})")).ok());
  for (int i = 0; i < 5; ++i) {
    clock_.Advance(100'000);
    clock_b.Advance(100'000);
    webcache::HttpRequest req;
    req.key = "t/1";
    auto a = server_->Fetch(req);
    auto b = plain.Fetch(req);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.body, b.body);
    EXPECT_EQ(a.etag, b.etag);
    EXPECT_EQ(a.ttl, b.ttl);
  }
}

TEST_F(ServerTest, WritesAreShedBeforeReadsUnderOverload) {
  ServerOptions opts;
  opts.admission.enabled = true;
  opts.admission.max_concurrent = 1;
  opts.admission.service_cost = 1000;
  opts.admission.target_queue_delay = 2000;
  opts.admission.codel_interval = 2000;
  MakeServer(opts);
  ASSERT_TRUE(server_->Insert("t", "1", Doc(R"({"x":1})")).ok());

  // One write + one read per 1000us against a 1000us service cost: the
  // queue settles right at 2x target, where shedding mode drops kLow
  // writes every round but kNormal reads keep being admitted.
  uint64_t write_sheds = 0;
  uint64_t read_sheds = 0;
  for (int i = 0; i < 50; ++i) {
    clock_.Advance(1000);
    db::Update u;
    u.Set("x", db::Value(i));
    if (server_->Update("t", "1", u).status().IsResourceExhausted()) {
      write_sheds++;
    }
    if (!Get("t/1").ok) read_sheds++;
  }
  EXPECT_GT(write_sheds, 0u);
  EXPECT_EQ(read_sheds, 0u);
}

TEST_F(ServerTest, NotificationTapObservesInvalidations) {
  MakeServer();
  std::vector<invalidb::Notification> taps;
  server_->AddNotificationTap(
      [&](const invalidb::Notification& n) { taps.push_back(n); });
  ASSERT_TRUE(server_->Insert("t", "1", Doc(R"({"g":1})")).ok());
  db::Query q = Q("t", R"({"g":1})");
  (void)GetQuery(q);
  db::Update u;
  u.Set("g", db::Value(2));
  ASSERT_TRUE(server_->Update("t", "1", u).ok());
  ASSERT_EQ(taps.size(), 1u);
  EXPECT_EQ(taps[0].type, invalidb::NotificationType::kRemove);
}

}  // namespace
}  // namespace quaestor::core
