// Tests for EBF extensions: Bloom filter serialization (client transfer)
// and the table-partitioned client EBF mode of §3.3.

#include <gtest/gtest.h>

#include <memory>

#include "client/client.h"
#include "common/clock.h"
#include "core/server.h"
#include "db/database.h"
#include "ebf/bloom_filter.h"
#include "ebf/expiring_bloom_filter.h"
#include "webcache/web_cache.h"

namespace quaestor {
namespace {

db::Value Doc(const char* json) {
  auto v = db::Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(BloomSerializationTest, RoundTripPreservesMembership) {
  ebf::BloomFilter bf;
  for (int i = 0; i < 5000; ++i) bf.Add("key" + std::to_string(i));
  const std::string bytes = bf.Serialize();
  EXPECT_EQ(bytes.size(), 12 + bf.ByteSize());

  auto parsed = ebf::BloomFilter::Deserialize(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->params().num_bits, bf.params().num_bits);
  EXPECT_EQ(parsed->params().num_hashes, bf.params().num_hashes);
  EXPECT_TRUE(parsed->bits() == bf.bits());
  for (int i = 0; i < 5000; ++i) {
    EXPECT_TRUE(parsed->MaybeContains("key" + std::to_string(i)));
  }
}

TEST(BloomSerializationTest, EmptyFilterRoundTrips) {
  ebf::BloomParams params;
  params.num_bits = 100;  // not a multiple of 8 or 64
  params.num_hashes = 3;
  ebf::BloomFilter bf(params);
  auto parsed = ebf::BloomFilter::Deserialize(bf.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->FillRatio(), 0.0);
  EXPECT_EQ(parsed->params().num_bits, 100u);
}

TEST(BloomSerializationTest, OddSizesRoundTrip) {
  for (size_t bits : {65u, 127u, 1000u, 116800u}) {
    ebf::BloomParams params;
    params.num_bits = bits;
    params.num_hashes = 4;
    ebf::BloomFilter bf(params);
    bf.Add("a");
    bf.Add("b");
    auto parsed = ebf::BloomFilter::Deserialize(bf.Serialize());
    ASSERT_TRUE(parsed.ok()) << bits;
    EXPECT_TRUE(parsed->bits() == bf.bits()) << bits;
  }
}

TEST(BloomSerializationTest, RejectsCorruptInput) {
  EXPECT_TRUE(ebf::BloomFilter::Deserialize("").status().code() ==
              StatusCode::kCorruption);
  EXPECT_FALSE(ebf::BloomFilter::Deserialize("short").ok());
  ebf::BloomFilter bf;
  std::string bytes = bf.Serialize();
  bytes[0] ^= 0x7f;  // break the magic
  EXPECT_FALSE(ebf::BloomFilter::Deserialize(bytes).ok());
  std::string truncated = bf.Serialize();
  truncated.resize(truncated.size() - 5);
  EXPECT_FALSE(ebf::BloomFilter::Deserialize(truncated).ok());
}

TEST(BloomSerializationTest, DefaultFilterFitsOneCongestionWindow) {
  ebf::BloomFilter bf;
  // 12-byte header + 14,600-byte body ≤ 10 × 1460 B + header.
  EXPECT_LE(bf.Serialize().size(), 14612u);
}

// ---------------------------------------------------------------------------
// Table-partitioned client EBFs
// ---------------------------------------------------------------------------

TEST(PartitionedEbfKeyTest, TableOfKey) {
  EXPECT_EQ(ebf::PartitionedEbf::TableOfKey("posts/p1"), "posts");
  EXPECT_EQ(ebf::PartitionedEbf::TableOfKey("q:posts?g $eq 1"), "posts");
  EXPECT_EQ(ebf::PartitionedEbf::TableOfKey("q:users?x $eq 2&limit=3"),
            "users");
}

class TableEbfClientTest : public ::testing::Test {
 protected:
  TableEbfClientTest() : clock_(0), db_(&clock_) {
    server_ = std::make_unique<core::QuaestorServer>(&clock_, &db_);
    cache_ = std::make_unique<webcache::ExpirationCache>(&clock_);
    writer_cache_ = std::make_unique<webcache::ExpirationCache>(&clock_);
    client::ClientOptions opts;
    opts.use_table_ebfs = true;
    opts.ebf_refresh_interval = 5 * kMicrosPerSecond;
    client_ = std::make_unique<client::QuaestorClient>(
        &clock_, server_.get(), cache_.get(), nullptr, opts);
    client_->Connect();
    writer_ = std::make_unique<client::QuaestorClient>(
        &clock_, server_.get(), writer_cache_.get(), nullptr);
    writer_->Connect();
  }

  SimulatedClock clock_;
  db::Database db_;
  std::unique_ptr<core::QuaestorServer> server_;
  std::unique_ptr<webcache::ExpirationCache> cache_;
  std::unique_ptr<webcache::ExpirationCache> writer_cache_;
  std::unique_ptr<client::QuaestorClient> client_;
  std::unique_ptr<client::QuaestorClient> writer_;
};

TEST_F(TableEbfClientTest, DetectsStalenessViaTableFilter) {
  ASSERT_TRUE(writer_->Insert("t", "x", Doc(R"({"v":1})")).ok());
  (void)client_->Read("t", "x");  // cached v1; lazily fetched t's filter

  clock_.Advance(1 * kMicrosPerSecond);
  db::Update u;
  u.Set("v", db::Value(2));
  ASSERT_TRUE(writer_->Update("t", "x", u).ok());

  // Within ∆ the stale copy may be served.
  auto stale = client_->Read("t", "x");
  EXPECT_EQ(stale.doc.Find("v")->as_int(), 1);

  // After ∆ the table filter refreshes and the read revalidates.
  clock_.Advance(5 * kMicrosPerSecond);
  auto fresh = client_->Read("t", "x");
  EXPECT_TRUE(fresh.outcome.ebf_refreshed);
  EXPECT_EQ(fresh.doc.Find("v")->as_int(), 2);
}

TEST_F(TableEbfClientTest, TablesRefreshIndependently) {
  ASSERT_TRUE(writer_->Insert("a", "x", Doc(R"({"v":1})")).ok());
  ASSERT_TRUE(writer_->Insert("b", "y", Doc(R"({"v":1})")).ok());
  (void)client_->Read("a", "x");  // fetches a's filter at t=0
  clock_.Advance(3 * kMicrosPerSecond);
  (void)client_->Read("b", "y");  // fetches b's filter at t=3
  clock_.Advance(3 * kMicrosPerSecond);  // t=6: a is 6s old, b is 3s old
  auto ra = client_->Read("a", "x");
  EXPECT_TRUE(ra.outcome.ebf_refreshed);  // ∆=5s exceeded for a
  auto rb = client_->Read("b", "y");
  EXPECT_FALSE(rb.outcome.ebf_refreshed);  // b still fresh
}

TEST_F(TableEbfClientTest, CrossTableStalenessDoesNotTriggerRevalidation) {
  ASSERT_TRUE(writer_->Insert("hot", "x", Doc(R"({"v":1})")).ok());
  ASSERT_TRUE(writer_->Insert("cold", "y", Doc(R"({"v":1})")).ok());
  (void)client_->Read("cold", "y");  // caches cold/y + cold's filter

  // Make the 'hot' table extremely stale (many flagged keys).
  for (int i = 0; i < 50; ++i) {
    const std::string id = "k" + std::to_string(i);
    ASSERT_TRUE(writer_->Insert("hot", id, Doc(R"({"v":1})")).ok());
    (void)writer_->Read("hot", id);
    db::Update u;
    u.Set("v", db::Value(2));
    ASSERT_TRUE(writer_->Update("hot", id, u).ok());
  }
  // A cold-table read keeps using its clean per-table filter: no
  // revalidation, served from cache.
  auto r = client_->Read("cold", "y");
  EXPECT_FALSE(r.outcome.revalidated);
  EXPECT_EQ(r.outcome.served_by, webcache::ServedBy::kClientCache);
}

TEST_F(TableEbfClientTest, ServerServesPerTableSnapshots) {
  ASSERT_TRUE(writer_->Insert("a", "x", Doc(R"({"v":1})")).ok());
  // Read from a different session so the request reaches the origin and
  // a TTL is issued (the writer would hit its own session cache).
  (void)client_->Read("a", "x");
  clock_.Advance(1 * kMicrosPerSecond);
  db::Update u;
  u.Set("v", db::Value(2));
  ASSERT_TRUE(writer_->Update("a", "x", u).ok());
  EXPECT_TRUE(server_->BloomSnapshotForTable("a").MaybeContains("a/x"));
  EXPECT_FALSE(server_->BloomSnapshotForTable("b").MaybeContains("a/x"));
}

}  // namespace
}  // namespace quaestor
