#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "sim/simulation.h"

namespace quaestor::sim {
namespace {

constexpr Micros kSecond = kMicrosPerSecond;

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

TEST(EventQueueTest, RunsInTimeOrder) {
  SimulatedClock clock(0);
  EventQueue q(&clock);
  std::vector<int> order;
  q.Schedule(300, [&] { order.push_back(3); });
  q.Schedule(100, [&] { order.push_back(1); });
  q.Schedule(200, [&] { order.push_back(2); });
  q.RunUntil(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.NowMicros(), 1000);
}

TEST(EventQueueTest, EqualTimesRunFifo) {
  SimulatedClock clock(0);
  EventQueue q(&clock);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(100, [&order, i] { order.push_back(i); });
  }
  q.RunUntil(1000);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsScheduleEvents) {
  SimulatedClock clock(0);
  EventQueue q(&clock);
  int fired = 0;
  q.Schedule(10, [&] {
    fired++;
    q.ScheduleAfter(10, [&] { fired++; });
  });
  q.RunUntil(100);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, StopsAtEnd) {
  SimulatedClock clock(0);
  EventQueue q(&clock);
  int fired = 0;
  q.Schedule(50, [&] { fired++; });
  q.Schedule(150, [&] { fired++; });
  q.RunUntil(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(clock.NowMicros(), 100);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, ClockAdvancesToEventTime) {
  SimulatedClock clock(0);
  EventQueue q(&clock);
  Micros seen = -1;
  q.Schedule(42, [&] { seen = clock.NowMicros(); });
  q.RunUntil(100);
  EXPECT_EQ(seen, 42);
}

TEST(QueueingResourceTest, NoWaitWhenIdle) {
  QueueingResource res(2, 100);
  EXPECT_EQ(res.Acquire(0), 100);   // server 1
  EXPECT_EQ(res.Acquire(0), 100);   // server 2
  EXPECT_EQ(res.Acquire(0), 200);   // queues behind the first
}

TEST(QueueingResourceTest, DrainOverTime) {
  QueueingResource res(1, 100);
  EXPECT_EQ(res.Acquire(0), 100);
  EXPECT_EQ(res.Acquire(50), 150);   // waits 50, serves 100
  EXPECT_EQ(res.Acquire(500), 100);  // idle again
}

// ---------------------------------------------------------------------------
// Simulation — small, fast configurations
// ---------------------------------------------------------------------------

workload::WorkloadOptions TinyWorkload() {
  workload::WorkloadOptions w;
  w.num_tables = 2;
  w.docs_per_table = 200;
  w.queries_per_table = 10;
  w.docs_per_query = 10;
  return w;
}

SimOptions TinySim() {
  SimOptions s;
  s.num_client_instances = 2;
  s.connections_per_instance = 5;
  s.duration = SecondsToMicros(20.0);
  s.warmup = SecondsToMicros(2.0);
  s.seed = 7;
  return s;
}

TEST(SimulationTest, RunsAndProducesMetrics) {
  Simulation sim(TinyWorkload(), TinySim());
  SimResults r = sim.Run();
  EXPECT_GT(r.total_ops, 100u);
  EXPECT_GT(r.reads.count, 0u);
  EXPECT_GT(r.queries.count, 0u);
  EXPECT_GT(r.writes.count, 0u);
  EXPECT_GT(r.throughput_ops_s, 0.0);
  EXPECT_GT(r.reads.latency.count(), 0u);
}

TEST(SimulationTest, DeterministicForSeed) {
  Simulation a(TinyWorkload(), TinySim());
  Simulation b(TinyWorkload(), TinySim());
  SimResults ra = a.Run();
  SimResults rb = b.Run();
  EXPECT_EQ(ra.total_ops, rb.total_ops);
  EXPECT_EQ(ra.reads.count, rb.reads.count);
  EXPECT_EQ(ra.queries.stale, rb.queries.stale);
  EXPECT_DOUBLE_EQ(ra.reads.latency.Mean(), rb.reads.latency.Mean());
}

TEST(SimulationTest, DifferentSeedsDiffer) {
  SimOptions s1 = TinySim();
  SimOptions s2 = TinySim();
  s2.seed = 8;
  Simulation a(TinyWorkload(), s1);
  Simulation b(TinyWorkload(), s2);
  EXPECT_NE(a.Run().total_ops, b.Run().total_ops);
}

TEST(SimulationTest, ScheduledResizesRepartitionMidRun) {
  SimOptions s = TinySim();
  SimOptions::ScheduledResize up;
  up.at = SecondsToMicros(5.0);
  up.query_partitions = 2;
  up.object_partitions = 2;
  SimOptions::ScheduledResize down;
  down.at = SecondsToMicros(12.0);
  down.query_partitions = 1;
  down.object_partitions = 2;
  s.scheduled_resizes = {up, down};

  Simulation sim(TinyWorkload(), s);
  SimResults r = sim.Run();
  EXPECT_EQ(r.invalidb_stats.rebalance_resizes, 2u);
  EXPECT_GT(r.invalidb_stats.rebalance_queries_reinstalled, 0u);
  // The run rides out both migrations: traffic completes and reads stay
  // within the consistency bound checked by the sim's own accounting.
  EXPECT_GT(r.total_ops, 100u);
  EXPECT_GT(r.queries.count, 0u);
}

TEST(SimulationTest, QuaestorBeatsUncachedOnLatency) {
  SimOptions quaestor = TinySim();
  quaestor.arch = CacheArchitecture::Quaestor();
  SimOptions uncached = TinySim();
  uncached.arch = CacheArchitecture::Uncached();

  Simulation qs(TinyWorkload(), quaestor);
  Simulation us(TinyWorkload(), uncached);
  SimResults rq = qs.Run();
  SimResults ru = us.Run();

  // Headline result of the paper: read-heavy workloads see large latency
  // and throughput gains through web caching.
  EXPECT_LT(rq.queries.latency.Mean(), ru.queries.latency.Mean() / 2.0);
  EXPECT_GT(rq.throughput_ops_s, ru.throughput_ops_s);
  // Uncached never hits a cache.
  EXPECT_EQ(ru.reads.client_hits, 0u);
  EXPECT_EQ(ru.reads.cdn_hits, 0u);
}

TEST(SimulationTest, UncachedHasNoStaleness) {
  SimOptions s = TinySim();
  s.arch = CacheArchitecture::Uncached();
  Simulation sim(TinyWorkload(), s);
  SimResults r = sim.Run();
  EXPECT_EQ(r.reads.stale, 0u);
  EXPECT_EQ(r.queries.stale, 0u);
}

TEST(SimulationTest, CdnOnlyUsesNoClientCache) {
  SimOptions s = TinySim();
  s.arch = CacheArchitecture::CdnOnly();
  Simulation sim(TinyWorkload(), s);
  SimResults r = sim.Run();
  EXPECT_EQ(r.reads.client_hits, 0u);
  EXPECT_GT(r.reads.cdn_hits + r.queries.cdn_hits, 0u);
}

TEST(SimulationTest, EbfOnlyNeverHitsCdn) {
  SimOptions s = TinySim();
  s.arch = CacheArchitecture::EbfOnly();
  Simulation sim(TinyWorkload(), s);
  SimResults r = sim.Run();
  EXPECT_EQ(r.reads.cdn_hits, 0u);
  EXPECT_EQ(r.queries.cdn_hits, 0u);
  EXPECT_GT(r.reads.client_hits + r.queries.client_hits, 0u);
}

TEST(SimulationTest, StalenessBoundedByRefreshInterval) {
  // Tighter ∆ → lower stale rate (Figure 10's monotone relationship).
  workload::WorkloadOptions w = TinyWorkload();
  SimOptions tight = TinySim();
  tight.client_options.ebf_refresh_interval = SecondsToMicros(1.0);
  SimOptions loose = TinySim();
  loose.client_options.ebf_refresh_interval = SecondsToMicros(50.0);

  // More writes so staleness actually occurs.
  w.update_weight = 0.10;
  w.read_weight = 0.45;
  w.query_weight = 0.45;

  Simulation ts(w, tight);
  Simulation ls(w, loose);
  SimResults rt = ts.Run();
  SimResults rl = ls.Run();
  EXPECT_LE(rt.queries.StaleRate(), rl.queries.StaleRate() + 0.01);
}

TEST(SimulationTest, TtlSamplesCollected) {
  workload::WorkloadOptions w = TinyWorkload();
  w.update_weight = 0.05;
  w.read_weight = 0.45;
  w.query_weight = 0.50;
  SimOptions s = TinySim();
  s.duration = SecondsToMicros(30.0);
  Simulation sim(w, s);
  SimResults r = sim.Run();
  EXPECT_GT(r.estimated_ttls_s.size(), 0u);
  EXPECT_GT(r.true_ttls_s.size(), 0u);
}

TEST(SimulationTest, HigherUpdateRateLowersHitRate) {
  workload::WorkloadOptions quiet = TinyWorkload();
  quiet.update_weight = 0.01;
  quiet.read_weight = 0.495;
  quiet.query_weight = 0.495;
  workload::WorkloadOptions busy = TinyWorkload();
  busy.update_weight = 0.3;
  busy.read_weight = 0.35;
  busy.query_weight = 0.35;

  Simulation qs(quiet, TinySim());
  Simulation bs(busy, TinySim());
  SimResults rq = qs.Run();
  SimResults rb = bs.Run();
  EXPECT_GT(rq.queries.ClientHitRate(), rb.queries.ClientHitRate());
}

}  // namespace
}  // namespace quaestor::sim
