#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "common/hash.h"
#include "common/random.h"

namespace quaestor {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextUint64InRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolEdgeCases) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolApproximatesProbability) {
  Rng rng(99);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(RngTest, ExponentialHasCorrectMean) {
  Rng rng(42);
  const double lambda = 0.5;
  double sum = 0.0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) sum += rng.NextExponential(lambda);
  EXPECT_NEAR(sum / kSamples, 1.0 / lambda, 0.05);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(42);
  const double mean = 3.0;
  double sum = 0.0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.NextPoisson(mean));
  }
  EXPECT_NEAR(sum / kSamples, mean, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(42);
  const double mean = 200.0;
  double sum = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.NextPoisson(mean));
  }
  EXPECT_NEAR(sum / kSamples, mean, 2.0);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(42);
  EXPECT_EQ(rng.NextPoisson(0.0), 0u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(42);
  constexpr int kSamples = 50000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.NextGaussian(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

// ---------------------------------------------------------------------------
// Zipfian — parameterized over theta
// ---------------------------------------------------------------------------

class ZipfianThetaTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfianThetaTest, EmpiricalFrequenciesMatchTheory) {
  const double theta = GetParam();
  constexpr uint64_t kN = 100;
  constexpr int kSamples = 200000;
  ZipfianGenerator zipf(kN, theta);
  Rng rng(17);
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kSamples; ++i) counts[zipf.Next(rng)]++;
  // Rank 0 should be the hottest and match its theoretical probability.
  const double p0 = zipf.Probability(0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kSamples, p0, p0 * 0.1);
  // Frequencies decay with rank (allowing sampling noise on the tail).
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST_P(ZipfianThetaTest, ProbabilitiesSumToOne) {
  const double theta = GetParam();
  ZipfianGenerator zipf(1000, theta);
  double sum = 0.0;
  for (uint64_t i = 0; i < 1000; ++i) sum += zipf.Probability(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(ZipfianThetaTest, SamplesInRange) {
  ZipfianGenerator zipf(50, GetParam());
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(rng), 50u);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfianThetaTest,
                         ::testing::Values(0.5, 0.7, 0.8, 0.9, 0.99));

TEST(ZipfianTest, SingleItemAlwaysZero) {
  ZipfianGenerator zipf(1, 0.99);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Next(rng), 0u);
}

TEST(ScrambledZipfianTest, SpreadsHotKeys) {
  ScrambledZipfianGenerator gen(1000, 0.99);
  Rng rng(1);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) counts[gen.Next(rng)]++;
  // The two hottest scrambled keys should not be adjacent.
  uint64_t hottest = 0;
  uint64_t second = 0;
  int hottest_count = 0;
  int second_count = 0;
  for (const auto& [k, c] : counts) {
    if (c > hottest_count) {
      second = hottest;
      second_count = hottest_count;
      hottest = k;
      hottest_count = c;
    } else if (c > second_count) {
      second = k;
      second_count = c;
    }
  }
  EXPECT_GT(hottest_count, 0);
  EXPECT_NE(hottest + 1, second);
}

// ---------------------------------------------------------------------------
// DiscreteDistribution
// ---------------------------------------------------------------------------

TEST(DiscreteDistributionTest, MatchesWeights) {
  DiscreteDistribution dist({0.5, 0.3, 0.2});
  Rng rng(11);
  std::vector<int> counts(3, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) counts[dist.Next(rng)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(kSamples), 0.5, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kSamples), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kSamples), 0.2, 0.01);
}

TEST(DiscreteDistributionTest, ZeroWeightNeverSampled) {
  DiscreteDistribution dist({1.0, 0.0, 1.0});
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(dist.Next(rng), 1u);
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

TEST(HashTest, StableAcrossCalls) {
  EXPECT_EQ(Hash64("hello"), Hash64("hello"));
  EXPECT_EQ(Hash64(uint64_t{42}), Hash64(uint64_t{42}));
}

TEST(HashTest, SeedChangesHash) {
  EXPECT_NE(Hash64("hello", 1), Hash64("hello", 2));
}

TEST(HashTest, DifferentInputsDiffer) {
  EXPECT_NE(Hash64("hello"), Hash64("hellp"));
  EXPECT_NE(Hash64(""), Hash64("x"));
}

TEST(HashTest, BloomPositionsInRange) {
  size_t pos[16];
  BloomPositions("some-key", 8, 1000, pos);
  for (int i = 0; i < 8; ++i) EXPECT_LT(pos[i], 1000u);
}

TEST(HashTest, BloomPositionsDeterministic) {
  size_t a[4];
  size_t b[4];
  BloomPositions("key", 4, 512, a);
  BloomPositions("key", 4, 512, b);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(HashTest, HashDistributionIsRoughlyUniform) {
  constexpr int kBuckets = 16;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < 16000; ++i) {
    counts[Hash64("key" + std::to_string(i)) % kBuckets]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

}  // namespace
}  // namespace quaestor
