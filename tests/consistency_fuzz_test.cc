// Randomized consistency fuzzing: every (seed, level) combination drives a
// fresh simulated cache hierarchy through a seeded schedule of CRUD, query,
// transaction and fault-injection ops while the oracle (src/check) asserts
// the level's invariants on every read. Violating schedules shrink to a
// minimal trace and print it for reproduction.
//
// Replay a specific schedule outside the sweep:
//   ./consistency_fuzz_test --fuzz_seed=17 --fuzz_level=causal
//   ./consistency_fuzz_test --fuzz_seed=3 --fuzz_level=delta-cdn --fuzz_ops=600
#include <cstdio>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "check/fuzzer.h"
#include "check/oracle.h"
#include "sim/simulation.h"
#include "workload/workload.h"

namespace quaestor::check {
namespace {

struct LevelConfig {
  const char* name;
  client::ConsistencyLevel level;
  bool revalidate_at_cdn;
};

constexpr LevelConfig kLevels[] = {
    {"delta", client::ConsistencyLevel::kDeltaAtomic, false},
    {"delta-cdn", client::ConsistencyLevel::kDeltaAtomic, true},
    {"causal", client::ConsistencyLevel::kCausal, false},
    {"strong", client::ConsistencyLevel::kStrong, false},
};

FuzzOptions MakeOptions(uint64_t seed, const LevelConfig& level) {
  FuzzOptions options;
  options.seed = seed;
  options.level = level.level;
  options.revalidate_at_cdn = level.revalidate_at_cdn;
  return options;
}

std::string FailureMessage(const FuzzReport& report) {
  std::string msg;
  for (const Violation& v : report.violations) {
    msg += v.ToString() + "\n";
  }
  msg += "minimal failing trace (" + std::to_string(report.trace.size()) +
         " ops):\n" + TraceToString(report.trace);
  return msg;
}

class ConsistencyFuzzTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ConsistencyFuzzTest, SeedIsViolationFree) {
  const uint64_t seed = static_cast<uint64_t>(std::get<0>(GetParam()));
  const LevelConfig& level = kLevels[std::get<1>(GetParam())];
  const FuzzReport report = FuzzAndShrink(MakeOptions(seed, level));
  EXPECT_TRUE(report.ok) << FailureMessage(report);
  EXPECT_GT(report.checked_reads, 0u);
  EXPECT_GT(report.checked_queries, 0u);
}

std::string SweepName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  std::string name = "seed" + std::to_string(std::get<0>(info.param)) +
                     "_" + kLevels[std::get<1>(info.param)].name;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

// 20 seeds x 4 level configurations = 80 deterministic schedules. A
// replayable repro for any failure is printed by FailureMessage above.
INSTANTIATE_TEST_SUITE_P(Sweep, ConsistencyFuzzTest,
                         ::testing::Combine(::testing::Range(1, 21),
                                            ::testing::Values(0, 1, 2, 3)),
                         SweepName);

// -- Fault injection: the oracle must catch deliberately broken protocol --

// Runs seeds until the injected fault produces a violation, and checks the
// matching control run (same seed, fault off) stays clean.
void ExpectFaultCaught(void (*inject)(FuzzOptions*), const char* what) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    FuzzOptions faulty = MakeOptions(seed, kLevels[0]);
    inject(&faulty);
    const FuzzReport report = FuzzAndShrink(faulty);
    if (report.ok) continue;

    bool delta_violation = false;
    for (const Violation& v : report.violations) {
      if (v.invariant == Invariant::kDeltaAtomicity) delta_violation = true;
    }
    EXPECT_TRUE(delta_violation)
        << what << ": violations found but none is a delta-atomicity one:\n"
        << FailureMessage(report);

    // The shrunk trace must be a genuine, smaller repro.
    EXPECT_FALSE(report.trace.empty());
    EXPECT_LE(report.trace.size(), faulty.num_ops);
    const FuzzReport replay = RunSchedule(faulty, report.trace);
    EXPECT_FALSE(replay.ok) << what << ": shrunk trace no longer fails";

    // Control: the identical schedule without the fault is clean.
    const FuzzReport control =
        FuzzAndShrink(MakeOptions(seed, kLevels[0]));
    EXPECT_TRUE(control.ok)
        << what << ": control run (fault off) also fails:\n"
        << FailureMessage(control);

    std::printf("%s: caught at seed %llu, shrunk %zu -> %zu ops\n%s", what,
                static_cast<unsigned long long>(seed), faulty.num_ops,
                report.trace.size(), TraceToString(report.trace).c_str());
    return;
  }
  FAIL() << what
         << ": no seed in 1..8 produced a violation — the oracle missed an "
            "injected staleness bug";
}

TEST(FaultInjectionTest, SkippedEbfRefreshBreaksDeltaAtomicity) {
  // The client keeps its connect-time EBF forever: writes it never hears
  // about leave its cached copies servable far beyond delta.
  ExpectFaultCaught(
      [](FuzzOptions* o) { o->fault_skip_ebf_refresh = true; },
      "fault_skip_ebf_refresh");
}

TEST(FaultInjectionTest, UntrackedReadTtlsBreakDeltaAtomicity) {
  // The server stops recording issued TTLs, so writes never flag keys in
  // the EBF and refreshed filters are empty.
  ExpectFaultCaught(
      [](FuzzOptions* o) { o->fault_disable_ebf_report = true; },
      "fault_disable_ebf_report");
}

// -- Oracle attached to the full Monte Carlo simulation (src/sim) --

TEST(SimulationOracleTest, MonteCarloRunIsViolationFree) {
  workload::WorkloadOptions workload;
  workload.num_tables = 2;
  workload.docs_per_table = 80;
  workload.queries_per_table = 4;
  workload.docs_per_query = 8;
  workload.read_weight = 0.40;
  workload.query_weight = 0.25;
  workload.insert_weight = 0.05;
  workload.update_weight = 0.25;
  workload.delete_weight = 0.05;

  sim::SimOptions sim_options;
  sim_options.num_client_instances = 4;
  sim_options.connections_per_instance = 2;
  sim_options.duration = SecondsToMicros(8.0);
  sim_options.warmup = SecondsToMicros(1.0);
  sim_options.seed = 7;

  sim::Simulation sim(workload, sim_options);

  OracleOptions oracle_options;
  oracle_options.delta = sim_options.client_options.ebf_refresh_interval;
  oracle_options.max_purge_delay = sim_options.cdn_purge_latency;
  oracle_options.revalidate_at_cdn =
      sim_options.client_options.revalidate_at_cdn;
  ConsistencyOracle oracle(&sim.clock(), &sim.database(), oracle_options);
  sim.database().AddChangeListener(
      [&oracle](const db::ChangeEvent& ev) { oracle.OnCommit(ev); });
  for (size_t t = 0; t < workload.num_tables; ++t) {
    for (const db::Query& q : sim.generator().QueriesFor(t)) {
      oracle.TrackQuery(q);
    }
  }
  sim.AddOpObserver([&oracle](const sim::OpObservation& obs) {
    const std::string session = "i" + std::to_string(obs.instance);
    switch (obs.type) {
      case workload::OpType::kRead:
        oracle.CheckRead(session, obs.table + "/" + obs.id,
                         obs.read->status.ok(), obs.read->version);
        break;
      case workload::OpType::kQuery:
        oracle.CheckQuery(session, *obs.query, obs.query_result->status.ok(),
                          obs.query_result->etag,
                          obs.query_result->representation);
        break;
      default:
        if (obs.written != nullptr) {
          oracle.OnSessionWrite(session, *obs.written);
        }
        break;
    }
  });

  sim.Run();

  std::string msg;
  for (const Violation& v : oracle.violations()) msg += v.ToString() + "\n";
  EXPECT_TRUE(oracle.violations().empty()) << msg;
  EXPECT_GT(oracle.checked_reads(), 100u);
  EXPECT_GT(oracle.checked_queries(), 100u);
}

// -- Oracle unit coverage: hand-built histories --

TEST(OracleTest, FlagsStaleReadBeyondBound) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  OracleOptions options;
  options.delta = MillisToMicros(100.0);
  ConsistencyOracle oracle(&clock, &db, options);
  db.AddChangeListener(
      [&oracle](const db::ChangeEvent& ev) { oracle.OnCommit(ev); });

  auto v1 = db.Insert("t", "x", db::Value::FromJson(R"({"v":1})").value());
  ASSERT_TRUE(v1.ok());
  clock.Advance(MillisToMicros(50.0));
  auto v2 = db.Apply("t", "x", db::Update().Set("v", db::Value(2)));
  ASSERT_TRUE(v2.ok());

  // 50 ms after supersession: still within the 100 ms bound.
  clock.Advance(MillisToMicros(50.0));
  oracle.CheckRead("s", "t/x", true, v1.value().version);
  EXPECT_TRUE(oracle.violations().empty());

  // 150 ms after supersession: out of bound.
  clock.Advance(MillisToMicros(100.0));
  oracle.CheckRead("s", "t/x", true, v1.value().version);
  ASSERT_EQ(oracle.violations().size(), 1u);
  EXPECT_EQ(oracle.violations()[0].invariant, Invariant::kDeltaAtomicity);
}

TEST(OracleTest, FlagsMonotonicReadRegression) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  OracleOptions options;
  options.delta = SecondsToMicros(10.0);  // wide: isolate monotonicity
  ConsistencyOracle oracle(&clock, &db, options);
  db.AddChangeListener(
      [&oracle](const db::ChangeEvent& ev) { oracle.OnCommit(ev); });

  auto v1 = db.Insert("t", "x", db::Value::FromJson(R"({"v":1})").value());
  auto v2 = db.Apply("t", "x", db::Update().Set("v", db::Value(2)));
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());

  oracle.CheckRead("s", "t/x", true, v2.value().version);
  EXPECT_TRUE(oracle.violations().empty());
  oracle.CheckRead("s", "t/x", true, v1.value().version);
  ASSERT_EQ(oracle.violations().size(), 1u);
  EXPECT_EQ(oracle.violations()[0].invariant, Invariant::kMonotonicReads);

  // A different session may still read v1 (its floor is unset).
  oracle.CheckRead("s2", "t/x", true, v1.value().version);
  EXPECT_EQ(oracle.violations().size(), 1u);
}

TEST(OracleTest, CausalDependencyPullsInWriterObservations) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  OracleOptions options;
  options.delta = SecondsToMicros(10.0);
  options.check_causal = true;
  ConsistencyOracle oracle(&clock, &db, options);
  db.AddChangeListener(
      [&oracle](const db::ChangeEvent& ev) { oracle.OnCommit(ev); });

  auto a1 = db.Insert("t", "a", db::Value::FromJson(R"({"v":1})").value());
  auto a2 = db.Apply("t", "a", db::Update().Set("v", db::Value(2)));
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());

  // Writer session reads a@2 then writes b@1: b@1 depends on a@2.
  oracle.CheckRead("writer", "t/a", true, a2.value().version);
  auto b1 = db.Insert("t", "b", db::Value::FromJson(R"({"v":1})").value());
  ASSERT_TRUE(b1.ok());
  oracle.OnSessionWrite("writer", b1.value());

  // Reader observes b@1, then reads a@1 — causally impossible.
  oracle.CheckRead("reader", "t/b", true, b1.value().version);
  EXPECT_TRUE(oracle.violations().empty());
  oracle.CheckRead("reader", "t/a", true, a1.value().version);
  ASSERT_EQ(oracle.violations().size(), 1u);
  EXPECT_EQ(oracle.violations()[0].invariant, Invariant::kCausal);
}

TEST(OracleTest, StrongRequiresLatestVersion) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  OracleOptions options;
  options.delta = SecondsToMicros(10.0);
  options.check_strong = true;
  ConsistencyOracle oracle(&clock, &db, options);
  db.AddChangeListener(
      [&oracle](const db::ChangeEvent& ev) { oracle.OnCommit(ev); });

  auto v1 = db.Insert("t", "x", db::Value::FromJson(R"({"v":1})").value());
  auto v2 = db.Apply("t", "x", db::Update().Set("v", db::Value(2)));
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());

  oracle.CheckRead("s", "t/x", true, v2.value().version);
  EXPECT_TRUE(oracle.violations().empty());
  oracle.CheckRead("s2", "t/x", true, v1.value().version);
  ASSERT_EQ(oracle.violations().size(), 1u);
  EXPECT_EQ(oracle.violations()[0].invariant, Invariant::kStrong);
}

TEST(OracleTest, DeletedKeyAbsenceIsBoundedToo) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  OracleOptions options;
  options.delta = MillisToMicros(100.0);
  ConsistencyOracle oracle(&clock, &db, options);
  db.AddChangeListener(
      [&oracle](const db::ChangeEvent& ev) { oracle.OnCommit(ev); });

  auto v1 = db.Insert("t", "x", db::Value::FromJson(R"({"v":1})").value());
  ASSERT_TRUE(v1.ok());
  clock.Advance(MillisToMicros(10.0));
  ASSERT_TRUE(db.Delete("t", "x").ok());
  clock.Advance(MillisToMicros(10.0));
  auto v3 = db.Insert("t", "x", db::Value::FromJson(R"({"v":3})").value());
  ASSERT_TRUE(v3.ok());

  // NotFound right after the re-insert: the delete interval is still
  // within the window, so this is an acceptable (bounded-stale) answer.
  oracle.CheckRead("s", "t/x", false, 0);
  EXPECT_TRUE(oracle.violations().empty());

  // Much later the key has existed for the whole window again.
  clock.Advance(MillisToMicros(500.0));
  oracle.CheckRead("s", "t/x", false, 0);
  ASSERT_EQ(oracle.violations().size(), 1u);
  EXPECT_EQ(oracle.violations()[0].invariant, Invariant::kDeltaAtomicity);
}

}  // namespace
}  // namespace quaestor::check

// Custom main: gtest by default; `--fuzz_seed` switches to single-schedule
// replay (the workflow for reproducing a sweep failure or exploring seeds).
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  bool replay = false;
  quaestor::check::FuzzOptions options;
  const quaestor::check::LevelConfig* level =
      &quaestor::check::kLevels[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg] {
      return arg.substr(arg.find('=') + 1);
    };
    if (arg.rfind("--fuzz_seed=", 0) == 0) {
      replay = true;
      options.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg.rfind("--fuzz_ops=", 0) == 0) {
      options.num_ops = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg.rfind("--fuzz_level=", 0) == 0) {
      level = nullptr;
      for (const auto& l : quaestor::check::kLevels) {
        if (value() == l.name) level = &l;
      }
      if (level == nullptr) {
        std::fprintf(stderr,
                     "unknown --fuzz_level (use delta, delta-cdn, causal, "
                     "strong)\n");
        return 2;
      }
    }
  }
  if (!replay) return RUN_ALL_TESTS();

  options.level = level->level;
  options.revalidate_at_cdn = level->revalidate_at_cdn;
  const quaestor::check::FuzzReport report =
      quaestor::check::FuzzAndShrink(options);
  std::printf("seed=%llu level=%s ops=%zu: %s (%llu reads, %llu queries "
              "checked)\n",
              static_cast<unsigned long long>(options.seed), level->name,
              options.num_ops, report.ok ? "PASS" : "FAIL",
              static_cast<unsigned long long>(report.checked_reads),
              static_cast<unsigned long long>(report.checked_queries));
  if (!report.ok) {
    std::printf("%s", quaestor::check::FailureMessage(report).c_str());
  }
  return report.ok ? 0 : 1;
}
