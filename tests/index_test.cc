#include <gtest/gtest.h>

#include "common/clock.h"
#include "db/table.h"

namespace quaestor::db {
namespace {

Value Doc(const char* json) {
  auto v = Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

Query Q(const char* filter) {
  auto q = Query::ParseJson("t", filter);
  EXPECT_TRUE(q.ok());
  return q.value();
}

class IndexTest : public ::testing::Test {
 protected:
  IndexTest() : table_("t") {
    for (int i = 0; i < 100; ++i) {
      std::string body = "{\"g\":" + std::to_string(i % 10) +
                         ",\"n\":" + std::to_string(i) + "}";
      EXPECT_TRUE(
          table_.Insert("d" + std::to_string(i), Doc(body.c_str()), 1).ok());
    }
  }

  Table table_;
};

TEST_F(IndexTest, CreateIndexBuildsFromExistingDocs) {
  table_.CreateIndex("g");
  EXPECT_TRUE(table_.HasIndex("g"));
  auto res = table_.Execute(Q(R"({"g":3})"));
  EXPECT_EQ(res.size(), 10u);
  EXPECT_EQ(table_.index_lookups(), 1u);
  EXPECT_EQ(table_.full_scans(), 0u);
}

TEST_F(IndexTest, IndexedAndScanResultsIdentical) {
  // Ground truth from a scan, then compare against the indexed plan.
  const auto scan = table_.Execute(Q(R"({"g":7})"));
  table_.CreateIndex("g");
  const auto indexed = table_.Execute(Q(R"({"g":7})"));
  ASSERT_EQ(scan.size(), indexed.size());
  for (size_t i = 0; i < scan.size(); ++i) {
    EXPECT_EQ(scan[i].id, indexed[i].id);  // same deterministic order
  }
}

TEST_F(IndexTest, RangeQueriesUseOrderedIndex) {
  table_.CreateIndex("g");
  auto res = table_.Execute(Q(R"({"g":{"$gt":3}})"));
  EXPECT_EQ(res.size(), 60u);  // g ∈ {4..9}, 10 docs each
  EXPECT_EQ(table_.full_scans(), 0u);
  EXPECT_EQ(table_.index_stats().range_scans, 1u);
}

TEST_F(IndexTest, RangeBoundsIntersected) {
  table_.CreateIndex("g");
  auto res = table_.Execute(Q(R"({"g":{"$gte":3,"$lt":5}})"));
  EXPECT_EQ(res.size(), 20u);  // g ∈ {3,4}
  EXPECT_EQ(table_.index_stats().range_scans, 1u);
  // Open/closed bound variants.
  EXPECT_EQ(table_.Execute(Q(R"({"g":{"$gt":3,"$lte":5}})")).size(), 20u);
  EXPECT_EQ(table_.Execute(Q(R"({"g":{"$gt":8}})")).size(), 10u);
  EXPECT_EQ(table_.Execute(Q(R"({"g":{"$lt":1}})")).size(), 10u);
  EXPECT_EQ(table_.full_scans(), 0u);
}

TEST_F(IndexTest, RangeScanAgreesWithScanGroundTruth) {
  const auto scan = table_.Execute(Q(R"({"g":{"$gte":2,"$lte":6}})"));
  table_.CreateIndex("g");
  const auto indexed = table_.Execute(Q(R"({"g":{"$gte":2,"$lte":6}})"));
  ASSERT_EQ(scan.size(), indexed.size());
  for (size_t i = 0; i < scan.size(); ++i) {
    EXPECT_EQ(scan[i].id, indexed[i].id);
  }
}

TEST_F(IndexTest, PrefixQueriesUseOrderedIndex) {
  Table t("x");
  ASSERT_TRUE(t.Insert("a", Doc(R"({"s":"alpha"})"), 1).ok());
  ASSERT_TRUE(t.Insert("b", Doc(R"({"s":"alps"})"), 1).ok());
  ASSERT_TRUE(t.Insert("c", Doc(R"({"s":"beta"})"), 1).ok());
  ASSERT_TRUE(t.Insert("d", Doc(R"({"s":42})"), 1).ok());
  t.CreateIndex("s");
  auto res = t.Execute(Query::ParseJson("x", R"({"s":{"$prefix":"al"}})")
                           .value());
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(res[0].id, "a");
  EXPECT_EQ(res[1].id, "b");
  EXPECT_EQ(t.index_stats().range_scans, 1u);
  EXPECT_EQ(t.full_scans(), 0u);
}

TEST_F(IndexTest, InQueriesUnionIndexBuckets) {
  table_.CreateIndex("g");
  auto res = table_.Execute(Q(R"({"g":{"$in":[2,5]}})"));
  EXPECT_EQ(res.size(), 20u);
  EXPECT_EQ(table_.index_stats().eq_lookups, 1u);
  EXPECT_EQ(table_.full_scans(), 0u);
  // $in with a null element can match docs missing the field → must scan.
  (void)table_.Execute(Q(R"({"g":{"$in":[2,null]}})"));
  EXPECT_EQ(table_.full_scans(), 1u);
}

TEST_F(IndexTest, OrderByLimitUsesTopKScan) {
  table_.CreateIndex("n");
  Query q = Q("{}");
  q.SetOrderBy({{"n", false}}).SetLimit(3);
  auto res = table_.Execute(q);
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0].body.Find("n")->as_int(), 99);
  EXPECT_EQ(res[1].body.Find("n")->as_int(), 98);
  EXPECT_EQ(res[2].body.Find("n")->as_int(), 97);
  EXPECT_EQ(table_.index_stats().order_scans, 1u);
  EXPECT_EQ(table_.full_scans(), 0u);

  // Ascending with offset, plus a predicate filtered during traversal.
  Query q2 = Q(R"({"g":{"$exists":true}})");
  q2.SetOrderBy({{"n", true}}).SetLimit(2).SetOffset(5);
  auto res2 = table_.Execute(q2);
  ASSERT_EQ(res2.size(), 2u);
  EXPECT_EQ(res2[0].body.Find("n")->as_int(), 5);
  EXPECT_EQ(res2[1].body.Find("n")->as_int(), 6);
  EXPECT_EQ(table_.index_stats().order_scans, 2u);
}

TEST_F(IndexTest, TopKRefusedWhenDocsMissTheSortKey) {
  // Docs missing the sort path order as null (first ascending) but are
  // invisible to the index → the top-k plan must refuse and scan.
  Table t("x");
  ASSERT_TRUE(t.Insert("a", Doc(R"({"n":1})"), 1).ok());
  ASSERT_TRUE(t.Insert("b", Doc(R"({"other":1})"), 1).ok());
  t.CreateIndex("n");
  Query q = Query::ParseJson("x", "{}").value();
  q.SetOrderBy({{"n", true}}).SetLimit(1);
  auto res = t.Execute(q);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].id, "b");  // null sorts first
  EXPECT_EQ(t.index_stats().order_scans, 0u);
  EXPECT_EQ(t.full_scans(), 1u);
}

TEST_F(IndexTest, TopKRefusedOnMultikeyIndex) {
  Table t("x");
  ASSERT_TRUE(t.Insert("a", Doc(R"({"tags":["b","z"]})"), 1).ok());
  ASSERT_TRUE(t.Insert("b", Doc(R"({"tags":["c"]})"), 1).ok());
  t.CreateIndex("tags");
  Query q = Query::ParseJson("x", "{}").value();
  q.SetOrderBy({{"tags", true}}).SetLimit(1);
  auto res = t.Execute(q);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(t.index_stats().order_scans, 0u);
  EXPECT_EQ(t.full_scans(), 1u);
}

TEST_F(IndexTest, TrulyNonIndexableQueriesStillScan) {
  table_.CreateIndex("g");
  (void)table_.Execute(Q(R"({"g":{"$ne":3}})"));
  (void)table_.Execute(Q(R"({"$or":[{"g":1},{"n":5}]})"));
  (void)table_.Execute(Q(R"({"g":{"$exists":true}})"));
  EXPECT_EQ(table_.full_scans(), 3u);
  EXPECT_EQ(table_.index_lookups(), 0u);
}

TEST_F(IndexTest, ConjunctUsesIndexAndVerifiesRest) {
  table_.CreateIndex("g");
  auto res = table_.Execute(Q(R"({"g":3,"n":{"$lt":50}})"));
  EXPECT_EQ(table_.index_lookups(), 1u);
  // g==3 → {3,13,23,...,93}; n<50 keeps 5 of them.
  EXPECT_EQ(res.size(), 5u);
}

TEST_F(IndexTest, IndexMaintainedOnUpdate) {
  table_.CreateIndex("g");
  Update u;
  u.Set("g", Value(3));
  ASSERT_TRUE(table_.Apply("d0", u, 2).ok());  // d0: g 0 → 3
  EXPECT_EQ(table_.Execute(Q(R"({"g":3})")).size(), 11u);
  EXPECT_EQ(table_.Execute(Q(R"({"g":0})")).size(), 9u);
}

TEST_F(IndexTest, IndexMaintainedOnDeleteAndReinsert) {
  table_.CreateIndex("g");
  ASSERT_TRUE(table_.Delete("d3", 2).ok());
  EXPECT_EQ(table_.Execute(Q(R"({"g":3})")).size(), 9u);
  ASSERT_TRUE(table_.Insert("d3", Doc(R"({"g":3})"), 3).ok());
  EXPECT_EQ(table_.Execute(Q(R"({"g":3})")).size(), 10u);
}

TEST_F(IndexTest, IndexMaintainedOnUpsert) {
  table_.CreateIndex("g");
  ASSERT_TRUE(table_.Upsert("d0", Doc(R"({"g":9})"), 2).ok());
  EXPECT_EQ(table_.Execute(Q(R"({"g":0})")).size(), 9u);
  EXPECT_EQ(table_.Execute(Q(R"({"g":9})")).size(), 11u);
}

TEST_F(IndexTest, MultikeyArrayIndex) {
  Table t("posts");
  ASSERT_TRUE(t.Insert("p1", Doc(R"({"tags":["a","b"]})"), 1).ok());
  ASSERT_TRUE(t.Insert("p2", Doc(R"({"tags":["b","c"]})"), 1).ok());
  t.CreateIndex("tags");
  // Element equality via the multikey entries.
  auto res = t.Execute(Query::ParseJson("posts", R"({"tags":"b"})").value());
  EXPECT_EQ(res.size(), 2u);
  EXPECT_EQ(t.index_lookups(), 1u);
  // Whole-array equality also indexed.
  auto exact = t.Execute(
      Query::ParseJson("posts", R"({"tags":["a","b"]})").value());
  EXPECT_EQ(exact.size(), 1u);
}

TEST_F(IndexTest, MultikeyMaintainedOnPushPull) {
  Table t("posts");
  ASSERT_TRUE(t.Insert("p1", Doc(R"({"tags":["a"]})"), 1).ok());
  t.CreateIndex("tags");
  Update push;
  push.Push("tags", Value("z"));
  ASSERT_TRUE(t.Apply("p1", push, 2).ok());
  EXPECT_EQ(
      t.Execute(Query::ParseJson("posts", R"({"tags":"z"})").value()).size(),
      1u);
  Update pull;
  pull.Pull("tags", Value("z"));
  ASSERT_TRUE(t.Apply("p1", pull, 3).ok());
  EXPECT_EQ(
      t.Execute(Query::ParseJson("posts", R"({"tags":"z"})").value()).size(),
      0u);
}

TEST_F(IndexTest, DropIndexFallsBackToScan) {
  table_.CreateIndex("g");
  table_.DropIndex("g");
  EXPECT_FALSE(table_.HasIndex("g"));
  (void)table_.Execute(Q(R"({"g":3})"));
  EXPECT_EQ(table_.full_scans(), 1u);
}

TEST_F(IndexTest, CreateIndexIsIdempotent) {
  table_.CreateIndex("g");
  table_.CreateIndex("g");
  EXPECT_EQ(table_.Execute(Q(R"({"g":3})")).size(), 10u);
}

TEST_F(IndexTest, MissingValueNotIndexed) {
  Table t("x");
  ASSERT_TRUE(t.Insert("a", Doc(R"({"g":1})"), 1).ok());
  ASSERT_TRUE(t.Insert("b", Doc(R"({"other":1})"), 1).ok());
  t.CreateIndex("g");
  EXPECT_EQ(t.Execute(Query::ParseJson("x", R"({"g":1})").value()).size(),
            1u);
  // Equality-with-null is not index-eligible (missing fields match null
  // but are absent from the index) — correctness requires a scan.
  (void)t.Execute(Query::ParseJson("x", R"({"g":null})").value());
  EXPECT_EQ(t.full_scans(), 1u);
}

TEST_F(IndexTest, OrderByStillAppliedOnIndexPath) {
  table_.CreateIndex("g");
  Query q = Q(R"({"g":3})");
  q.SetOrderBy({{"n", false}}).SetLimit(3);
  auto res = table_.Execute(q);
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0].body.Find("n")->as_int(), 93);
  EXPECT_EQ(res[1].body.Find("n")->as_int(), 83);
}

}  // namespace
}  // namespace quaestor::db
