// Property tests for the Expiring Bloom Filter family (§3.3):
//  1. No false negatives, ever: every key the server tracks as stale must
//     be reported stale by the client-facing Bloom snapshot — across
//     randomized read/write/advance traces for the in-process EBF, the
//     KV-backed SharedEbf, and the per-table PartitionedEbf.
//  2. The SharedEbf's exact stale set behaves identically to the
//     in-process EBF under the same trace.
//  3. The measured false-positive rate of the flat filter stays within 2x
//     of the analytic bound across fill levels.
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"
#include "ebf/bloom_filter.h"
#include "ebf/expiring_bloom_filter.h"
#include "ebf/shared_ebf.h"
#include "kv/kv_store.h"

namespace quaestor::ebf {
namespace {

std::string KeyName(uint64_t i) { return "items/k" + std::to_string(i); }

/// One randomized step against both EBF variants plus a model `universe`
/// of every key ever touched.
struct Trace {
  explicit Trace(uint64_t seed) : rng(seed) {}

  void Step(SimulatedClock& clock, ExpiringBloomFilter& ebf,
            SharedEbf& shared) {
    const double roll = rng.NextDouble();
    const std::string key = KeyName(rng.NextUint64(40));
    universe.insert(key);
    if (roll < 0.45) {
      const Micros ttl = SecondsToMicros(0.1) +
                         static_cast<Micros>(rng.NextUint64(
                             static_cast<uint64_t>(SecondsToMicros(2.0))));
      ebf.ReportRead(key, ttl);
      shared.ReportRead(key, ttl);
    } else if (roll < 0.80) {
      ebf.ReportWrite(key);
      shared.ReportWrite(key);
    } else {
      clock.Advance(static_cast<Micros>(
          rng.NextUint64(static_cast<uint64_t>(SecondsToMicros(0.5)))));
    }
  }

  Rng rng;
  std::set<std::string> universe;
};

TEST(EbfPropertyTest, NoFalseNegativesAndSharedAgreesWithInProcess) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SimulatedClock clock(0);
    kv::KvStore kv(&clock);
    ExpiringBloomFilter ebf(&clock);
    SharedEbf shared(&clock, &kv);
    Trace trace(seed);
    for (int step = 0; step < 400; ++step) {
      trace.Step(clock, ebf, shared);

      // The two implementations must agree on the exact stale set. Sweep
      // expirations first: StaleCount reports the post-maintenance view.
      ebf.Maintain();
      shared.Maintain();
      size_t stale = 0;
      for (const std::string& key : trace.universe) {
        ASSERT_EQ(ebf.IsStale(key), shared.IsStale(key))
            << "seed " << seed << " step " << step << " key " << key;
        stale += ebf.IsStale(key) ? 1 : 0;
      }
      ASSERT_EQ(ebf.StaleCount(), stale);

      // Snapshot every 25 steps (it is O(m)): anything exactly stale must
      // be in the flat filter — a false negative here would let a client
      // serve provably stale data as fresh.
      if (step % 25 != 0) continue;
      BloomFilter snapshot = ebf.Snapshot();
      BloomFilter shared_snapshot = shared.Snapshot();
      for (const std::string& key : trace.universe) {
        if (!ebf.IsStale(key)) continue;
        EXPECT_TRUE(ebf.MaybeStale(key)) << key;
        EXPECT_TRUE(snapshot.MaybeContains(key)) << key;
        EXPECT_TRUE(shared_snapshot.MaybeContains(key)) << key;
      }
    }
  }
}

TEST(EbfPropertyTest, PartitionedAggregateHasNoFalseNegatives) {
  const char* const kTables[] = {"users", "posts", "items"};
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SimulatedClock clock(0);
    PartitionedEbf ebf(&clock);
    Rng rng(seed);
    std::set<std::string> universe;
    for (int step = 0; step < 400; ++step) {
      const std::string key = std::string(kTables[rng.NextUint64(3)]) +
                              "/k" + std::to_string(rng.NextUint64(30));
      universe.insert(key);
      const double roll = rng.NextDouble();
      if (roll < 0.45) {
        ebf.ReportRead(key, SecondsToMicros(1.0));
      } else if (roll < 0.8) {
        ebf.ReportWrite(key);
      } else {
        clock.Advance(static_cast<Micros>(
            rng.NextUint64(static_cast<uint64_t>(SecondsToMicros(0.4)))));
      }
      if (step % 25 != 0) continue;
      BloomFilter aggregate = ebf.AggregateSnapshot();
      for (const std::string& k : universe) {
        if (ebf.IsStale(k)) {
          EXPECT_TRUE(aggregate.MaybeContains(k)) << k;
        }
      }
    }
  }
}

TEST(EbfPropertyTest, MeasuredFprWithinTwiceAnalyticBound) {
  const BloomParams params;  // the paper's 14.6 KB / 4-hash default
  const size_t kProbes = 20000;
  for (const size_t fill : {1000u, 5000u, 10000u, 20000u}) {
    BloomFilter filter(params);
    for (size_t i = 0; i < fill; ++i) {
      filter.Add("member/" + std::to_string(i));
    }
    size_t false_positives = 0;
    for (size_t i = 0; i < kProbes; ++i) {
      if (filter.MaybeContains("absent/" + std::to_string(i))) {
        ++false_positives;
      }
    }
    const double measured =
        static_cast<double>(false_positives) / static_cast<double>(kProbes);
    const double predicted = BloomParams::FalsePositiveRate(
        params.num_bits, fill, params.num_hashes);
    // 2x the analytic rate plus additive slack for sampling noise at the
    // near-zero fill levels.
    EXPECT_LE(measured, 2.0 * predicted + 0.002)
        << "fill " << fill << ": measured " << measured << " vs predicted "
        << predicted;
    // And the filter must not be uselessly pessimistic either.
    EXPECT_LE(predicted / 4.0, measured + 0.002) << "fill " << fill;
  }
}

}  // namespace
}  // namespace quaestor::ebf
