#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "db/query.h"
#include "invalidb/transport.h"
#include "kv/kv_store.h"

namespace quaestor::invalidb {
namespace {

db::Value Doc(const char* json) {
  auto v = db::Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

db::Query Q(const char* table, const char* filter) {
  auto q = db::Query::ParseJson(table, filter);
  EXPECT_TRUE(q.ok());
  return q.value();
}

db::ChangeEvent Change(const char* table, const char* id, const char* body,
                       Micros at = 0) {
  db::ChangeEvent ev;
  ev.kind = db::WriteKind::kUpdate;
  ev.after.table = table;
  ev.after.id = id;
  ev.after.body = Doc(body);
  ev.after.write_time = at;
  ev.commit_time = at;
  return ev;
}

// ---------------------------------------------------------------------------
// Query spec round trips (wire format prerequisite)
// ---------------------------------------------------------------------------

TEST(QuerySpecTest, StatelessRoundTrip) {
  db::Query q = Q("posts", R"({"tags":{"$contains":"x"},"n":{"$gte":3}})");
  auto back = db::Query::FromSpec(q.ToSpec());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NormalizedKey(), q.NormalizedKey());
}

TEST(QuerySpecTest, StatefulRoundTrip) {
  db::Query q = Q("posts", R"({"$or":[{"a":1},{"b":{"$lt":2}}]})");
  q.SetOrderBy({{"score", false}, {"title", true}}).SetLimit(5).SetOffset(2);
  auto back = db::Query::FromSpec(q.ToSpec());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NormalizedKey(), q.NormalizedKey());
  EXPECT_EQ(back->limit(), 5);
  EXPECT_EQ(back->offset(), 2);
  ASSERT_EQ(back->order_by().size(), 2u);
  EXPECT_FALSE(back->order_by()[0].ascending);
}

TEST(QuerySpecTest, NotAndEmptyRoundTrip) {
  db::Query q = Q("t", R"({"$not":{"a":1}})");
  auto back = db::Query::FromSpec(q.ToSpec());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NormalizedKey(), q.NormalizedKey());
  db::Query empty = Q("t", "{}");
  auto back2 = db::Query::FromSpec(empty.ToSpec());
  ASSERT_TRUE(back2.ok());
  EXPECT_EQ(back2->NormalizedKey(), empty.NormalizedKey());
}

TEST(QuerySpecTest, RejectsMalformed) {
  EXPECT_FALSE(db::Query::FromSpec(db::Value(5)).ok());
  EXPECT_FALSE(db::Query::FromSpec(Doc(R"({"filter":{}})")).ok());
  EXPECT_FALSE(db::Query::FromSpec(Doc(R"({"table":"t"})")).ok());
}

// ---------------------------------------------------------------------------
// Message encode/decode
// ---------------------------------------------------------------------------

TEST(TransportCodecTest, NotificationRoundTrip) {
  Notification n;
  n.type = NotificationType::kChangeIndex;
  n.query_key = "q:t?a $eq 1";
  n.record_id = "d7";
  n.event_time = 12345;
  n.new_index = 3;
  auto back = transport::DecodeNotification(transport::EncodeNotification(n));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->type, n.type);
  EXPECT_EQ(back->query_key, n.query_key);
  EXPECT_EQ(back->record_id, n.record_id);
  EXPECT_EQ(back->event_time, n.event_time);
  EXPECT_EQ(back->new_index, n.new_index);
}

TEST(TransportCodecTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(transport::DecodeNotification(std::string("not json")).ok());
  EXPECT_FALSE(transport::DecodeNotification(std::string("{}")).ok());
  EXPECT_FALSE(
      transport::DecodeNotification(std::string(R"({"type":"x"})")).ok());
}

// ---------------------------------------------------------------------------
// Golden wire bytes: single-pass encoders == tree serialization
// ---------------------------------------------------------------------------

// The encoders build canonical JSON in one append pass; these literals pin
// the exact bytes (key order, escaping, no whitespace). The FromJson →
// ToJson round trip then pins the deeper property the fast-path decoders
// rely on: the hand-built bytes are exactly what serializing the
// equivalent db::Value tree would produce.
std::string Canonicalize(const std::string& json) {
  auto v = db::Value::FromJson(json);
  EXPECT_TRUE(v.ok()) << json;
  return v->ToJson();
}

TEST(TransportGoldenTest, ChangeEncodingBytes) {
  db::ChangeEvent ev;
  ev.kind = db::WriteKind::kUpdate;
  ev.after.table = "posts";
  ev.after.id = "p\"1\\x";  // escaping is part of the golden surface
  ev.after.version = 7;
  ev.after.write_time = 42;
  ev.after.body = Doc(R"({"z":[1,null],"a":"x"})");  // sorted on encode
  ev.commit_time = 43;
  const std::string got = transport::EncodeChange(ev);
  EXPECT_EQ(got,
            "{\"after\":{\"body\":{\"a\":\"x\",\"z\":[1,null]},"
            "\"deleted\":false,\"id\":\"p\\\"1\\\\x\",\"table\":\"posts\","
            "\"version\":7,\"write_time\":42},\"commit_time\":43,"
            "\"kind\":1,\"op\":\"change\"}");
  EXPECT_EQ(got, Canonicalize(got));
}

TEST(TransportGoldenTest, NotificationEncodingBytes) {
  Notification n;
  n.type = NotificationType::kChangeIndex;
  n.query_key = "q:t?a $eq 1";
  n.record_id = "d7";
  n.event_time = 12345;
  n.new_index = 3;
  const std::string got = transport::EncodeNotification(n);
  EXPECT_EQ(got,
            "{\"event_time\":12345,\"new_index\":3,"
            "\"query_key\":\"q:t?a $eq 1\","
            "\"record_id\":\"d7\",\"type\":3}");
  EXPECT_EQ(got, Canonicalize(got));
}

TEST(TransportGoldenTest, BatchEnvelopeBytes) {
  db::ChangeEvent ev;
  ev.kind = db::WriteKind::kDelete;
  ev.after.table = "t";
  ev.after.id = "d1";
  ev.after.deleted = true;
  ev.after.body = Doc(R"({"g":1})");
  ev.after.write_time = 5;
  ev.commit_time = 6;
  const std::string batch = transport::EncodeChangeBatch({ev, ev});
  EXPECT_EQ(batch,
            "{\"events\":["
            "{\"after\":{\"body\":{\"g\":1},\"deleted\":true,\"id\":\"d1\","
            "\"table\":\"t\",\"version\":0,\"write_time\":5},"
            "\"commit_time\":6,\"kind\":2},"
            "{\"after\":{\"body\":{\"g\":1},\"deleted\":true,\"id\":\"d1\","
            "\"table\":\"t\",\"version\":0,\"write_time\":5},"
            "\"commit_time\":6,\"kind\":2}"
            "],\"op\":\"change_batch\"}");
  EXPECT_EQ(batch, Canonicalize(batch));
  EXPECT_EQ(transport::EncodeChangeBatch({}),
            "{\"events\":[],\"op\":\"change_batch\"}");

  Notification n;
  n.type = NotificationType::kAdd;
  n.query_key = "k";
  n.record_id = "r";
  n.event_time = 9;
  const std::string nb = transport::EncodeNotificationBatch({n});
  EXPECT_EQ(nb,
            "{\"notifications\":[{\"event_time\":9,\"new_index\":-1,"
            "\"query_key\":\"k\",\"record_id\":\"r\",\"type\":0}],"
            "\"op\":\"notify_batch\"}");
  EXPECT_EQ(nb, Canonicalize(nb));
}

// ---------------------------------------------------------------------------
// Batch envelope decode: fast path, fallback, and rejection
// ---------------------------------------------------------------------------

std::vector<db::ChangeEvent> SampleEvents() {
  std::vector<db::ChangeEvent> events;
  events.push_back(Change("t", "a", R"({"g":1})", 10));
  db::ChangeEvent del;
  del.kind = db::WriteKind::kDelete;
  del.after.table = "t";
  del.after.id = "esc\"aped\\id";  // forces the scanner's unescape path
  del.after.deleted = true;
  del.after.body = Doc(R"({"nested":{"deep":[1,2,{"x":null}]}})");
  del.after.version = 3;
  del.after.write_time = 11;
  del.commit_time = 12;
  events.push_back(std::move(del));
  return events;
}

void ExpectSameEvents(const std::vector<db::ChangeEvent>& got,
                      const std::vector<db::ChangeEvent>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].kind, want[i].kind) << i;
    EXPECT_EQ(got[i].commit_time, want[i].commit_time) << i;
    EXPECT_EQ(got[i].after.table, want[i].after.table) << i;
    EXPECT_EQ(got[i].after.id, want[i].after.id) << i;
    EXPECT_EQ(got[i].after.version, want[i].after.version) << i;
    EXPECT_EQ(got[i].after.write_time, want[i].after.write_time) << i;
    EXPECT_EQ(got[i].after.deleted, want[i].after.deleted) << i;
    EXPECT_EQ(got[i].after.body.ToJson(), want[i].after.body.ToJson()) << i;
  }
}

TEST(TransportCodecTest, ChangeBatchRoundTrip) {
  const std::vector<db::ChangeEvent> events = SampleEvents();
  auto back = transport::DecodeChangeBatch(transport::EncodeChangeBatch(events));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectSameEvents(back.value(), events);

  auto empty = transport::DecodeChangeBatch(transport::EncodeChangeBatch({}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(TransportCodecTest, NotificationBatchRoundTrip) {
  std::vector<Notification> batch;
  for (int i = 0; i < 3; ++i) {
    Notification n;
    n.type = static_cast<NotificationType>(i);
    n.query_key = "q\"" + std::to_string(i);
    n.record_id = "r" + std::to_string(i);
    n.event_time = 100 + i;
    n.new_index = i - 1;
    batch.push_back(std::move(n));
  }
  auto back = transport::DecodeNotificationBatch(
      transport::EncodeNotificationBatch(batch));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ((*back)[i].type, batch[i].type);
    EXPECT_EQ((*back)[i].query_key, batch[i].query_key);
    EXPECT_EQ((*back)[i].record_id, batch[i].record_id);
    EXPECT_EQ((*back)[i].event_time, batch[i].event_time);
    EXPECT_EQ((*back)[i].new_index, batch[i].new_index);
  }
}

// A non-canonical producer (whitespace, reordered keys) must decode to
// the same events through the generic fallback — the fast path is an
// optimization of the wire format, not a narrowing of it.
TEST(TransportCodecTest, NonCanonicalBatchDecodesViaFallback) {
  const std::vector<db::ChangeEvent> events = SampleEvents();
  const std::string canonical = transport::EncodeChangeBatch(events);
  auto parsed = db::Value::FromJson(canonical);
  ASSERT_TRUE(parsed.ok());
  // Re-render with whitespace and the "op" key first: same JSON value,
  // different bytes, so the canonical scanner must bail out cleanly.
  std::string reordered = "{ \"op\": \"change_batch\", \"events\": " +
                          parsed->Find("events")->ToJson() + " }";
  auto back = transport::DecodeChangeBatch(reordered);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectSameEvents(back.value(), events);
}

TEST(TransportCodecTest, BatchDecodeRejectsTornEnvelopes) {
  const std::string whole = transport::EncodeChangeBatch(SampleEvents());
  // Truncations at every length must error, never half-apply.
  for (const size_t keep : {whole.size() - 1, whole.size() / 2, size_t{3}}) {
    EXPECT_FALSE(transport::DecodeChangeBatch(whole.substr(0, keep)).ok())
        << keep;
  }
  // Corrupt inner event: the whole batch is rejected.
  std::string corrupt = whole;
  corrupt.replace(corrupt.find("\"kind\":"), 8, "\"kind\":\"");
  EXPECT_FALSE(transport::DecodeChangeBatch(corrupt).ok());
  // Wrong / missing discriminator.
  EXPECT_FALSE(transport::DecodeChangeBatch(std::string("{}")).ok());
  EXPECT_FALSE(
      transport::DecodeChangeBatch(std::string(R"({"events":[]})")).ok());
  EXPECT_FALSE(transport::DecodeNotificationBatch(
                   std::string(R"({"notifications":{},"op":"notify_batch"})"))
                   .ok());
}

// ---------------------------------------------------------------------------
// End-to-end over the message queues
// ---------------------------------------------------------------------------

class TransportTest : public ::testing::Test {
 protected:
  TransportTest()
      : clock_(0),
        kv_(&clock_),
        remote_(&clock_, &kv_, "invalidb",
                [this](const Notification& n) { received_.push_back(n); }),
        worker_(&clock_, &kv_, "invalidb") {}

  SimulatedClock clock_;
  kv::KvStore kv_;
  std::vector<Notification> received_;
  InvalidbRemote remote_;
  InvalidbWorker worker_;
};

TEST_F(TransportTest, RegisterMatchNotifyRoundTrip) {
  db::Query q = Q("posts", R"({"g":1})");
  remote_.RegisterQuery(q, {}, kEventsAll);
  remote_.OnChange(Change("posts", "p1", R"({"g":1})", 42));
  EXPECT_EQ(worker_.ProcessPending(), 2u);
  EXPECT_EQ(remote_.DrainNotifications(), 1u);
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].type, NotificationType::kAdd);
  EXPECT_EQ(received_[0].record_id, "p1");
  EXPECT_EQ(received_[0].event_time, 42);
  EXPECT_EQ(received_[0].query_key, q.NormalizedKey());
}

TEST_F(TransportTest, InitialResultShipsOverTheWire) {
  db::Query q = Q("posts", R"({"g":1})");
  db::Document init;
  init.table = "posts";
  init.id = "p1";
  init.body = Doc(R"({"g":1})");
  remote_.RegisterQuery(q, {init}, kEventsAll);
  // In-place change of a shipped member: change, not add.
  remote_.OnChange(Change("posts", "p1", R"({"g":1,"views":1})"));
  worker_.ProcessPending();
  remote_.DrainNotifications();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].type, NotificationType::kChange);
}

TEST_F(TransportTest, DeregisterOverTheWire) {
  db::Query q = Q("posts", R"({"g":1})");
  remote_.RegisterQuery(q, {}, kEventsAll);
  worker_.ProcessPending();
  EXPECT_TRUE(worker_.cluster().IsRegistered(q.NormalizedKey()));
  remote_.DeregisterQuery(q.NormalizedKey());
  remote_.OnChange(Change("posts", "p1", R"({"g":1})"));
  worker_.ProcessPending();
  EXPECT_FALSE(worker_.cluster().IsRegistered(q.NormalizedKey()));
  EXPECT_EQ(remote_.DrainNotifications(), 0u);
}

TEST_F(TransportTest, StatefulQueryOverTheWire) {
  db::Query q = Q("posts", "{}");
  q.SetOrderBy({{"score", false}}).SetLimit(1);
  db::Document a;
  a.table = "posts";
  a.id = "a";
  a.body = Doc(R"({"score":10})");
  remote_.RegisterQuery(q, {a}, kEventsAll);
  remote_.OnChange(Change("posts", "b", R"({"score":99})"));
  worker_.ProcessPending();
  remote_.DrainNotifications();
  // b displaces a in the window: remove a + add b.
  ASSERT_EQ(received_.size(), 2u);
  EXPECT_EQ(received_[0].type, NotificationType::kRemove);
  EXPECT_EQ(received_[0].record_id, "a");
  EXPECT_EQ(received_[1].type, NotificationType::kAdd);
  EXPECT_EQ(received_[1].new_index, 0);
}

TEST_F(TransportTest, MalformedMessagesCountedAndSkipped) {
  kv_.QueuePush("invalidb:requests", "garbage");
  kv_.QueuePush("invalidb:requests", R"({"op":"unknown"})");
  kv_.QueuePush("invalidb:requests", R"({"op":"register"})");
  db::Query q = Q("posts", R"({"g":1})");
  remote_.RegisterQuery(q, {}, kEventsAll);
  EXPECT_EQ(worker_.ProcessPending(), 4u);
  EXPECT_EQ(worker_.decode_errors(), 3u);
  EXPECT_TRUE(worker_.cluster().IsRegistered(q.NormalizedKey()));
}

TEST_F(TransportTest, BackgroundThreadsDeliver) {
  std::atomic<int> count{0};
  InvalidbRemote remote(SystemClock::Default(), &kv_, "bg",
                        [&](const Notification&) { count++; });
  InvalidbWorker worker(SystemClock::Default(), &kv_, "bg");
  worker.Start();
  remote.StartPolling();

  db::Query q = Q("posts", R"({"g":{"$gte":0}})");
  remote.RegisterQuery(q, {}, kEventsAll);
  for (int i = 0; i < 50; ++i) {
    remote.OnChange(Change("posts", ("p" + std::to_string(i)).c_str(),
                           R"({"g":1})"));
  }
  // Wait for the pipeline to drain.
  for (int spin = 0; spin < 500 && count.load() < 50; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  remote.StopPolling();
  worker.Stop();
  EXPECT_EQ(count.load(), 50);
}

// ---------------------------------------------------------------------------
// Batched transport end-to-end: flush triggers, coalescing, counters
// ---------------------------------------------------------------------------

class BatchedTransportTest : public ::testing::Test {
 protected:
  static TransportOptions Topts() {
    TransportOptions topts;
    topts.reliable.enabled = true;
    topts.batching.enabled = true;
    topts.batching.max_batch = 4;
    topts.batching.flush_interval = 5 * kMicrosPerMilli;
    return topts;
  }
  static InvalidbOptions Copts() {
    InvalidbOptions copts;
    // One node: every query matched in one dispatch, so the dispatch's
    // notifications coalesce into a single notify_batch envelope.
    copts.query_partitions = 1;
    copts.object_partitions = 1;
    return copts;
  }

  BatchedTransportTest()
      : clock_(0),
        kv_(&clock_),
        remote_(&clock_, &kv_, "bt",
                [this](const Notification& n) { received_.push_back(n); },
                Topts()),
        worker_(&clock_, &kv_, "bt", Copts(), Topts()) {}

  SimulatedClock clock_;
  kv::KvStore kv_;
  std::vector<Notification> received_;
  InvalidbRemote remote_;
  InvalidbWorker worker_;
};

TEST_F(BatchedTransportTest, SizeTriggeredFlushShipsOneEnvelope) {
  db::Query q = Q("posts", R"({"g":{"$gte":0}})");
  remote_.RegisterQuery(q, {}, kEventsAll);
  worker_.ProcessPending();

  for (int i = 0; i < 3; ++i) {
    remote_.OnChange(Change("posts", ("p" + std::to_string(i)).c_str(),
                            R"({"g":1})", i + 1));
    EXPECT_EQ(remote_.stats().batches_sent, 0u) << i;  // still buffering
  }
  EXPECT_EQ(remote_.buffered_changes(), 3u);
  EXPECT_EQ(worker_.ProcessPending(), 0u);  // nothing on the wire yet

  remote_.OnChange(Change("posts", "p3", R"({"g":1})", 4));  // fills to 4
  EXPECT_EQ(remote_.buffered_changes(), 0u);
  const TransportStats sent = remote_.stats();
  EXPECT_EQ(sent.batches_sent, 1u);
  EXPECT_EQ(sent.batch_events, 4u);
  EXPECT_EQ(sent.flushes_size, 1u);

  worker_.ProcessPending();
  remote_.DrainNotifications();
  ASSERT_EQ(received_.size(), 4u);  // one kAdd per event, commit order
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(received_[i].record_id, "p" + std::to_string(i));
    EXPECT_EQ(received_[i].event_time, i + 1);
  }
}

TEST_F(BatchedTransportTest, ControlRequestsBarrierFlushTheBuffer) {
  db::Query q = Q("posts", R"({"g":1})");
  remote_.RegisterQuery(q, {}, kEventsAll);
  remote_.OnChange(Change("posts", "p1", R"({"g":1})", 1));
  EXPECT_EQ(remote_.buffered_changes(), 1u);
  // Deregister must not overtake the buffered change: the change flushes
  // first (reason: barrier), so the worker matches it against a still-
  // registered query.
  remote_.DeregisterQuery(q.NormalizedKey());
  EXPECT_EQ(remote_.buffered_changes(), 0u);
  EXPECT_EQ(remote_.stats().flushes_barrier, 1u);
  worker_.ProcessPending();
  EXPECT_EQ(remote_.DrainNotifications(), 1u);
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].type, NotificationType::kAdd);
  EXPECT_FALSE(worker_.cluster().IsRegistered(q.NormalizedKey()));
}

TEST_F(BatchedTransportTest, PartialBatchAgesOutOnTick) {
  db::Query q = Q("posts", R"({"g":1})");
  remote_.RegisterQuery(q, {}, kEventsAll);
  remote_.OnChange(Change("posts", "p1", R"({"g":1})", 1));
  remote_.Tick();  // younger than flush_interval: stays buffered
  EXPECT_EQ(remote_.buffered_changes(), 1u);
  EXPECT_EQ(remote_.stats().flushes_interval, 0u);

  clock_.Advance(6 * kMicrosPerMilli);  // past the 5 ms interval
  remote_.Tick();
  EXPECT_EQ(remote_.buffered_changes(), 0u);
  const TransportStats sent = remote_.stats();
  EXPECT_EQ(sent.flushes_interval, 1u);
  EXPECT_EQ(sent.batches_sent, 1u);
  worker_.ProcessPending();
  EXPECT_EQ(remote_.DrainNotifications(), 1u);
}

TEST_F(BatchedTransportTest, NotificationsCoalesceIntoOneEnvelope) {
  // Three queries matching the same record: one change event produces a
  // three-notification dispatch, which must leave the worker as ONE
  // notify_batch envelope.
  for (int g = 0; g < 3; ++g) {
    remote_.RegisterQuery(
        Q("posts", ("{\"g\":{\"$gte\":" + std::to_string(-g) + "}}").c_str()),
        {}, kEventsAll);
  }
  remote_.OnChange(Change("posts", "p1", R"({"g":1})", 9));
  remote_.FlushChanges();
  EXPECT_EQ(remote_.stats().flushes_manual, 1u);
  worker_.ProcessPending();

  // One reliable envelope on the notifications queue, carrying all three.
  EXPECT_EQ(kv_.QueueLen("bt:notifications"), 1u);
  const TransportStats wstats = worker_.stats();
  EXPECT_EQ(wstats.batches_sent, 1u);
  EXPECT_EQ(wstats.batch_events, 3u);
  EXPECT_EQ(remote_.DrainNotifications(), 3u);
  ASSERT_EQ(received_.size(), 3u);
  for (const Notification& n : received_) {
    EXPECT_EQ(n.record_id, "p1");
    EXPECT_EQ(n.event_time, 9);
  }
  EXPECT_EQ(worker_.cluster().stats().notifications_coalesced, 2u);
}

TEST_F(BatchedTransportTest, StatsExportCoversBatchingCounters) {
  remote_.RegisterQuery(Q("posts", R"({"g":1})"), {}, kEventsAll);
  for (int i = 0; i < 5; ++i) {  // one size flush (4) + one buffered
    remote_.OnChange(Change("posts", "p1", R"({"g":1})", i + 1));
  }
  remote_.FlushChanges();
  worker_.ProcessPending();
  remote_.DrainNotifications();

  obs::MetricsRegistry registry;
  remote_.stats().ExportTo(&registry, {{"endpoint", "remote"}});
  worker_.stats().ExportTo(&registry, {{"endpoint", "worker"}});
  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("transport_batches_sent{endpoint=remote}"), 2u);
  EXPECT_EQ(snap.counters.at("transport_batch_events{endpoint=remote}"), 5u);
  EXPECT_EQ(snap.counters.at(
                "transport_batch_flushes{endpoint=remote,reason=size}"),
            1u);
  EXPECT_EQ(snap.counters.at(
                "transport_batch_flushes{endpoint=remote,reason=manual}"),
            1u);
  EXPECT_GE(snap.counters.at("transport_batches_sent{endpoint=worker}"), 1u);
}

}  // namespace
}  // namespace quaestor::invalidb
