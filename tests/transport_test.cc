#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "db/query.h"
#include "invalidb/transport.h"
#include "kv/kv_store.h"

namespace quaestor::invalidb {
namespace {

db::Value Doc(const char* json) {
  auto v = db::Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

db::Query Q(const char* table, const char* filter) {
  auto q = db::Query::ParseJson(table, filter);
  EXPECT_TRUE(q.ok());
  return q.value();
}

db::ChangeEvent Change(const char* table, const char* id, const char* body,
                       Micros at = 0) {
  db::ChangeEvent ev;
  ev.kind = db::WriteKind::kUpdate;
  ev.after.table = table;
  ev.after.id = id;
  ev.after.body = Doc(body);
  ev.after.write_time = at;
  ev.commit_time = at;
  return ev;
}

// ---------------------------------------------------------------------------
// Query spec round trips (wire format prerequisite)
// ---------------------------------------------------------------------------

TEST(QuerySpecTest, StatelessRoundTrip) {
  db::Query q = Q("posts", R"({"tags":{"$contains":"x"},"n":{"$gte":3}})");
  auto back = db::Query::FromSpec(q.ToSpec());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NormalizedKey(), q.NormalizedKey());
}

TEST(QuerySpecTest, StatefulRoundTrip) {
  db::Query q = Q("posts", R"({"$or":[{"a":1},{"b":{"$lt":2}}]})");
  q.SetOrderBy({{"score", false}, {"title", true}}).SetLimit(5).SetOffset(2);
  auto back = db::Query::FromSpec(q.ToSpec());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NormalizedKey(), q.NormalizedKey());
  EXPECT_EQ(back->limit(), 5);
  EXPECT_EQ(back->offset(), 2);
  ASSERT_EQ(back->order_by().size(), 2u);
  EXPECT_FALSE(back->order_by()[0].ascending);
}

TEST(QuerySpecTest, NotAndEmptyRoundTrip) {
  db::Query q = Q("t", R"({"$not":{"a":1}})");
  auto back = db::Query::FromSpec(q.ToSpec());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NormalizedKey(), q.NormalizedKey());
  db::Query empty = Q("t", "{}");
  auto back2 = db::Query::FromSpec(empty.ToSpec());
  ASSERT_TRUE(back2.ok());
  EXPECT_EQ(back2->NormalizedKey(), empty.NormalizedKey());
}

TEST(QuerySpecTest, RejectsMalformed) {
  EXPECT_FALSE(db::Query::FromSpec(db::Value(5)).ok());
  EXPECT_FALSE(db::Query::FromSpec(Doc(R"({"filter":{}})")).ok());
  EXPECT_FALSE(db::Query::FromSpec(Doc(R"({"table":"t"})")).ok());
}

// ---------------------------------------------------------------------------
// Message encode/decode
// ---------------------------------------------------------------------------

TEST(TransportCodecTest, NotificationRoundTrip) {
  Notification n;
  n.type = NotificationType::kChangeIndex;
  n.query_key = "q:t?a $eq 1";
  n.record_id = "d7";
  n.event_time = 12345;
  n.new_index = 3;
  auto back = transport::DecodeNotification(transport::EncodeNotification(n));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->type, n.type);
  EXPECT_EQ(back->query_key, n.query_key);
  EXPECT_EQ(back->record_id, n.record_id);
  EXPECT_EQ(back->event_time, n.event_time);
  EXPECT_EQ(back->new_index, n.new_index);
}

TEST(TransportCodecTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(transport::DecodeNotification("not json").ok());
  EXPECT_FALSE(transport::DecodeNotification("{}").ok());
  EXPECT_FALSE(transport::DecodeNotification(R"({"type":"x"})").ok());
}

// ---------------------------------------------------------------------------
// End-to-end over the message queues
// ---------------------------------------------------------------------------

class TransportTest : public ::testing::Test {
 protected:
  TransportTest()
      : clock_(0),
        kv_(&clock_),
        remote_(&clock_, &kv_, "invalidb",
                [this](const Notification& n) { received_.push_back(n); }),
        worker_(&clock_, &kv_, "invalidb") {}

  SimulatedClock clock_;
  kv::KvStore kv_;
  std::vector<Notification> received_;
  InvalidbRemote remote_;
  InvalidbWorker worker_;
};

TEST_F(TransportTest, RegisterMatchNotifyRoundTrip) {
  db::Query q = Q("posts", R"({"g":1})");
  remote_.RegisterQuery(q, {}, kEventsAll);
  remote_.OnChange(Change("posts", "p1", R"({"g":1})", 42));
  EXPECT_EQ(worker_.ProcessPending(), 2u);
  EXPECT_EQ(remote_.DrainNotifications(), 1u);
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].type, NotificationType::kAdd);
  EXPECT_EQ(received_[0].record_id, "p1");
  EXPECT_EQ(received_[0].event_time, 42);
  EXPECT_EQ(received_[0].query_key, q.NormalizedKey());
}

TEST_F(TransportTest, InitialResultShipsOverTheWire) {
  db::Query q = Q("posts", R"({"g":1})");
  db::Document init;
  init.table = "posts";
  init.id = "p1";
  init.body = Doc(R"({"g":1})");
  remote_.RegisterQuery(q, {init}, kEventsAll);
  // In-place change of a shipped member: change, not add.
  remote_.OnChange(Change("posts", "p1", R"({"g":1,"views":1})"));
  worker_.ProcessPending();
  remote_.DrainNotifications();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].type, NotificationType::kChange);
}

TEST_F(TransportTest, DeregisterOverTheWire) {
  db::Query q = Q("posts", R"({"g":1})");
  remote_.RegisterQuery(q, {}, kEventsAll);
  worker_.ProcessPending();
  EXPECT_TRUE(worker_.cluster().IsRegistered(q.NormalizedKey()));
  remote_.DeregisterQuery(q.NormalizedKey());
  remote_.OnChange(Change("posts", "p1", R"({"g":1})"));
  worker_.ProcessPending();
  EXPECT_FALSE(worker_.cluster().IsRegistered(q.NormalizedKey()));
  EXPECT_EQ(remote_.DrainNotifications(), 0u);
}

TEST_F(TransportTest, StatefulQueryOverTheWire) {
  db::Query q = Q("posts", "{}");
  q.SetOrderBy({{"score", false}}).SetLimit(1);
  db::Document a;
  a.table = "posts";
  a.id = "a";
  a.body = Doc(R"({"score":10})");
  remote_.RegisterQuery(q, {a}, kEventsAll);
  remote_.OnChange(Change("posts", "b", R"({"score":99})"));
  worker_.ProcessPending();
  remote_.DrainNotifications();
  // b displaces a in the window: remove a + add b.
  ASSERT_EQ(received_.size(), 2u);
  EXPECT_EQ(received_[0].type, NotificationType::kRemove);
  EXPECT_EQ(received_[0].record_id, "a");
  EXPECT_EQ(received_[1].type, NotificationType::kAdd);
  EXPECT_EQ(received_[1].new_index, 0);
}

TEST_F(TransportTest, MalformedMessagesCountedAndSkipped) {
  kv_.QueuePush("invalidb:requests", "garbage");
  kv_.QueuePush("invalidb:requests", R"({"op":"unknown"})");
  kv_.QueuePush("invalidb:requests", R"({"op":"register"})");
  db::Query q = Q("posts", R"({"g":1})");
  remote_.RegisterQuery(q, {}, kEventsAll);
  EXPECT_EQ(worker_.ProcessPending(), 4u);
  EXPECT_EQ(worker_.decode_errors(), 3u);
  EXPECT_TRUE(worker_.cluster().IsRegistered(q.NormalizedKey()));
}

TEST_F(TransportTest, BackgroundThreadsDeliver) {
  std::atomic<int> count{0};
  InvalidbRemote remote(SystemClock::Default(), &kv_, "bg",
                        [&](const Notification&) { count++; });
  InvalidbWorker worker(SystemClock::Default(), &kv_, "bg");
  worker.Start();
  remote.StartPolling();

  db::Query q = Q("posts", R"({"g":{"$gte":0}})");
  remote.RegisterQuery(q, {}, kEventsAll);
  for (int i = 0; i < 50; ++i) {
    remote.OnChange(Change("posts", ("p" + std::to_string(i)).c_str(),
                           R"({"g":1})"));
  }
  // Wait for the pipeline to drain.
  for (int spin = 0; spin < 500 && count.load() < 50; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  remote.StopPolling();
  worker.Stop();
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace quaestor::invalidb
