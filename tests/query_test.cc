#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "db/query.h"
#include "db/value.h"

namespace quaestor::db {
namespace {

Value Doc(const char* json) {
  auto v = Value::FromJson(json);
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  return v.value();
}

Query Q(const char* filter_json) {
  auto q = Query::ParseJson("posts", filter_json);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return q.value();
}

// ---------------------------------------------------------------------------
// Matching semantics — parameterized (filter, doc, expected)
// ---------------------------------------------------------------------------

using MatchCase = std::tuple<const char*, const char*, bool>;

class MatchTest : public ::testing::TestWithParam<MatchCase> {};

TEST_P(MatchTest, Matches) {
  const auto& [filter, doc, expected] = GetParam();
  EXPECT_EQ(Q(filter).Matches(Doc(doc)), expected)
      << "filter=" << filter << " doc=" << doc;
}

INSTANTIATE_TEST_SUITE_P(
    Equality, MatchTest,
    ::testing::Values(
        MatchCase{R"({"a":1})", R"({"a":1})", true},
        MatchCase{R"({"a":1})", R"({"a":2})", false},
        MatchCase{R"({"a":1})", R"({"b":1})", false},
        MatchCase{R"({"a":1.0})", R"({"a":1})", true},  // numeric equality
        MatchCase{R"({"a":"x"})", R"({"a":"x"})", true},
        MatchCase{R"({"a":null})", R"({"b":1})", true},   // missing == null
        MatchCase{R"({"a":null})", R"({"a":null})", true},
        MatchCase{R"({"a":null})", R"({"a":1})", false},
        // MongoDB array semantics: equality matches array elements.
        MatchCase{R"({"tags":"x"})", R"({"tags":["x","y"]})", true},
        MatchCase{R"({"tags":"z"})", R"({"tags":["x","y"]})", false},
        // Nested paths.
        MatchCase{R"({"a.b":5})", R"({"a":{"b":5}})", true},
        MatchCase{R"({"a.b":5})", R"({"a":{"b":6}})", false}));

INSTANTIATE_TEST_SUITE_P(
    Ranges, MatchTest,
    ::testing::Values(
        MatchCase{R"({"n":{"$gt":3}})", R"({"n":4})", true},
        MatchCase{R"({"n":{"$gt":3}})", R"({"n":3})", false},
        MatchCase{R"({"n":{"$gte":3}})", R"({"n":3})", true},
        MatchCase{R"({"n":{"$lt":3}})", R"({"n":2})", true},
        MatchCase{R"({"n":{"$lt":3}})", R"({"n":3})", false},
        MatchCase{R"({"n":{"$lte":3}})", R"({"n":3})", true},
        MatchCase{R"({"n":{"$gt":3,"$lt":10}})", R"({"n":5})", true},
        MatchCase{R"({"n":{"$gt":3,"$lt":10}})", R"({"n":10})", false},
        // Strings compare lexicographically.
        MatchCase{R"({"s":{"$gt":"apple"}})", R"({"s":"banana"})", true},
        MatchCase{R"({"s":{"$lt":"apple"}})", R"({"s":"banana"})", false},
        // Mixed types never satisfy range predicates.
        MatchCase{R"({"n":{"$gt":3}})", R"({"n":"4"})", false},
        MatchCase{R"({"n":{"$gt":3}})", R"({"x":1})", false}));

INSTANTIATE_TEST_SUITE_P(
    SetOps, MatchTest,
    ::testing::Values(
        MatchCase{R"({"c":{"$in":[1,2,3]}})", R"({"c":2})", true},
        MatchCase{R"({"c":{"$in":[1,2,3]}})", R"({"c":4})", false},
        MatchCase{R"({"c":{"$nin":[1,2]}})", R"({"c":3})", true},
        MatchCase{R"({"c":{"$nin":[1,2]}})", R"({"c":2})", false},
        MatchCase{R"({"tags":{"$contains":"x"}})", R"({"tags":["x"]})", true},
        MatchCase{R"({"tags":{"$contains":"x"}})", R"({"tags":["y"]})",
                  false},
        MatchCase{R"({"tags":{"$contains":"x"}})", R"({"tags":"x"})", false},
        MatchCase{R"({"tags":{"$contains":1}})", R"({"tags":[1,2]})", true},
        MatchCase{R"({"a":{"$exists":true}})", R"({"a":0})", true},
        MatchCase{R"({"a":{"$exists":true}})", R"({"b":0})", false},
        MatchCase{R"({"a":{"$exists":false}})", R"({"b":0})", true},
        MatchCase{R"({"s":{"$prefix":"foo"}})", R"({"s":"foobar"})", true},
        MatchCase{R"({"s":{"$prefix":"foo"}})", R"({"s":"barfoo"})", false},
        MatchCase{R"({"s":{"$prefix":"foo"}})", R"({"s":42})", false}));

INSTANTIATE_TEST_SUITE_P(
    Logical, MatchTest,
    ::testing::Values(
        MatchCase{R"({"$or":[{"a":1},{"b":2}]})", R"({"a":1})", true},
        MatchCase{R"({"$or":[{"a":1},{"b":2}]})", R"({"b":2})", true},
        MatchCase{R"({"$or":[{"a":1},{"b":2}]})", R"({"a":2,"b":3})", false},
        MatchCase{R"({"$and":[{"a":1},{"b":2}]})", R"({"a":1,"b":2})", true},
        MatchCase{R"({"$and":[{"a":1},{"b":2}]})", R"({"a":1,"b":3})",
                  false},
        MatchCase{R"({"$not":{"a":1}})", R"({"a":2})", true},
        MatchCase{R"({"$not":{"a":1}})", R"({"a":1})", false},
        // Implicit AND of multiple fields.
        MatchCase{R"({"a":1,"b":2})", R"({"a":1,"b":2})", true},
        MatchCase{R"({"a":1,"b":2})", R"({"a":1,"b":9})", false},
        // Nested logical operators.
        MatchCase{R"({"$or":[{"$and":[{"a":1},{"b":1}]},{"c":1}]})",
                  R"({"c":1})", true},
        MatchCase{R"({"$or":[{"$and":[{"a":1},{"b":1}]},{"c":1}]})",
                  R"({"a":1,"b":1})", true},
        MatchCase{R"({"$or":[{"$and":[{"a":1},{"b":1}]},{"c":1}]})",
                  R"({"a":1,"b":2,"c":2})", false}));

TEST(QueryTest, EmptyFilterMatchesEverything) {
  Query q = Q("{}");
  EXPECT_TRUE(q.Matches(Doc(R"({"a":1})")));
  EXPECT_TRUE(q.Matches(Doc("{}")));
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

TEST(QueryParseTest, RejectsUnknownOperators) {
  EXPECT_FALSE(Query::ParseJson("t", R"({"a":{"$regex":"x"}})").ok());
  EXPECT_FALSE(Query::ParseJson("t", R"({"$nor":[{"a":1}]})").ok());
}

TEST(QueryParseTest, RejectsEmptyTable) {
  auto spec = Value::FromJson("{}");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(Query::Parse("", spec.value()).ok());
}

TEST(QueryParseTest, RejectsNonObjectFilter) {
  auto spec = Value::FromJson("[1,2]");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(Query::Parse("t", spec.value()).ok());
}

TEST(QueryParseTest, RejectsEmptyLogicalArray) {
  EXPECT_FALSE(Query::ParseJson("t", R"({"$or":[]})").ok());
  EXPECT_FALSE(Query::ParseJson("t", R"({"$and":7})").ok());
}

TEST(QueryParseTest, OperatorObjectWithMultipleOps) {
  Query q = Q(R"({"n":{"$gte":1,"$lte":3}})");
  EXPECT_TRUE(q.Matches(Doc(R"({"n":2})")));
  EXPECT_FALSE(q.Matches(Doc(R"({"n":0})")));
  EXPECT_FALSE(q.Matches(Doc(R"({"n":4})")));
}

// ---------------------------------------------------------------------------
// Normalization (cache keys)
// ---------------------------------------------------------------------------

TEST(NormalizeTest, FieldOrderIrrelevant) {
  EXPECT_EQ(Q(R"({"a":1,"b":2})").NormalizedKey(),
            Q(R"({"b":2,"a":1})").NormalizedKey());
}

TEST(NormalizeTest, OrClauseOrderIrrelevant) {
  EXPECT_EQ(Q(R"({"$or":[{"a":1},{"b":2}]})").NormalizedKey(),
            Q(R"({"$or":[{"b":2},{"a":1}]})").NormalizedKey());
}

TEST(NormalizeTest, DifferentPredicatesDiffer) {
  EXPECT_NE(Q(R"({"a":1})").NormalizedKey(), Q(R"({"a":2})").NormalizedKey());
  EXPECT_NE(Q(R"({"a":1})").NormalizedKey(),
            Q(R"({"a":{"$gt":1}})").NormalizedKey());
}

TEST(NormalizeTest, TableIsPartOfKey) {
  auto q1 = Query::ParseJson("t1", R"({"a":1})");
  auto q2 = Query::ParseJson("t2", R"({"a":1})");
  ASSERT_TRUE(q1.ok() && q2.ok());
  EXPECT_NE(q1->NormalizedKey(), q2->NormalizedKey());
}

TEST(NormalizeTest, WindowingIsPartOfKey) {
  Query base = Q(R"({"a":1})");
  Query limited = Q(R"({"a":1})");
  limited.SetLimit(10);
  Query offsetted = Q(R"({"a":1})");
  offsetted.SetOffset(5);
  Query sorted = Q(R"({"a":1})");
  sorted.SetOrderBy({{"n", true}});
  EXPECT_NE(base.NormalizedKey(), limited.NormalizedKey());
  EXPECT_NE(base.NormalizedKey(), offsetted.NormalizedKey());
  EXPECT_NE(base.NormalizedKey(), sorted.NormalizedKey());
  EXPECT_NE(limited.NormalizedKey(), offsetted.NormalizedKey());
}

TEST(NormalizeTest, KeyHasQueryPrefix) {
  EXPECT_EQ(Q(R"({"a":1})").NormalizedKey().rfind("q:posts?", 0), 0u);
}

TEST(QueryTest, StatelessDetection) {
  EXPECT_TRUE(Q(R"({"a":1})").IsStateless());
  Query sorted = Q(R"({"a":1})");
  sorted.SetOrderBy({{"n", true}});
  EXPECT_FALSE(sorted.IsStateless());
  Query limited = Q(R"({"a":1})");
  limited.SetLimit(5);
  EXPECT_FALSE(limited.IsStateless());
  Query offsetted = Q(R"({"a":1})");
  offsetted.SetOffset(2);
  EXPECT_FALSE(offsetted.IsStateless());
}

// ---------------------------------------------------------------------------
// Ordering
// ---------------------------------------------------------------------------

TEST(OrderTest, OrderedBeforeAscending) {
  Query q = Q("{}");
  q.SetOrderBy({{"n", true}});
  EXPECT_TRUE(q.OrderedBefore(Doc(R"({"n":1})"), "a", Doc(R"({"n":2})"), "b"));
  EXPECT_FALSE(
      q.OrderedBefore(Doc(R"({"n":2})"), "a", Doc(R"({"n":1})"), "b"));
}

TEST(OrderTest, OrderedBeforeDescending) {
  Query q = Q("{}");
  q.SetOrderBy({{"n", false}});
  EXPECT_TRUE(q.OrderedBefore(Doc(R"({"n":2})"), "a", Doc(R"({"n":1})"), "b"));
}

TEST(OrderTest, TieBrokenById) {
  Query q = Q("{}");
  q.SetOrderBy({{"n", true}});
  EXPECT_TRUE(q.OrderedBefore(Doc(R"({"n":1})"), "a", Doc(R"({"n":1})"), "b"));
  EXPECT_FALSE(
      q.OrderedBefore(Doc(R"({"n":1})"), "b", Doc(R"({"n":1})"), "a"));
}

TEST(OrderTest, MissingFieldSortsAsNull) {
  Query q = Q("{}");
  q.SetOrderBy({{"n", true}});
  // null < number, so the doc missing "n" comes first.
  EXPECT_TRUE(q.OrderedBefore(Doc(R"({"x":1})"), "a", Doc(R"({"n":0})"), "b"));
}

TEST(OrderTest, MultiKeySort) {
  Query q = Q("{}");
  q.SetOrderBy({{"cat", true}, {"n", false}});
  EXPECT_TRUE(q.OrderedBefore(Doc(R"({"cat":1,"n":5})"), "a",
                              Doc(R"({"cat":2,"n":9})"), "b"));
  EXPECT_TRUE(q.OrderedBefore(Doc(R"({"cat":1,"n":9})"), "a",
                              Doc(R"({"cat":1,"n":5})"), "b"));
}

}  // namespace
}  // namespace quaestor::db
