#include <gtest/gtest.h>

#include <memory>

#include "client/client.h"
#include "client/transaction.h"
#include "common/clock.h"
#include "core/server.h"
#include "db/database.h"
#include "webcache/web_cache.h"

namespace quaestor::client {
namespace {

db::Value Doc(const char* json) {
  auto v = db::Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

class TransactionTest : public ::testing::Test {
 protected:
  TransactionTest() : clock_(0), db_(&clock_) {
    server_ = std::make_unique<core::QuaestorServer>(&clock_, &db_);
    cdn_ = std::make_unique<webcache::InvalidationCache>(&clock_);
    server_->AddPurgeTarget(
        [this](const std::string& key) { cdn_->Purge(key); });
    cache_a_ = std::make_unique<webcache::ExpirationCache>(&clock_);
    cache_b_ = std::make_unique<webcache::ExpirationCache>(&clock_);
    alice_ = std::make_unique<QuaestorClient>(&clock_, server_.get(),
                                              cache_a_.get(), cdn_.get());
    bob_ = std::make_unique<QuaestorClient>(&clock_, server_.get(),
                                            cache_b_.get(), cdn_.get());
    alice_->Connect();
    bob_->Connect();
  }

  SimulatedClock clock_;
  db::Database db_;
  std::unique_ptr<core::QuaestorServer> server_;
  std::unique_ptr<webcache::InvalidationCache> cdn_;
  std::unique_ptr<webcache::ExpirationCache> cache_a_;
  std::unique_ptr<webcache::ExpirationCache> cache_b_;
  std::unique_ptr<QuaestorClient> alice_;
  std::unique_ptr<QuaestorClient> bob_;
};

TEST_F(TransactionTest, ReadOnlyCommitSucceeds) {
  ASSERT_TRUE(alice_->Insert("t", "x", Doc(R"({"v":1})")).ok());
  ClientTransaction tx(bob_.get());
  auto r = tx.Read("t", "x");
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(tx.read_set_size(), 1u);
  auto commit = tx.Commit();
  EXPECT_TRUE(commit.ok()) << commit.status().ToString();
}

TEST_F(TransactionTest, WritesApplyAtomicallyAtCommit) {
  ASSERT_TRUE(alice_->Insert("acct", "a", Doc(R"({"balance":100})")).ok());
  ASSERT_TRUE(alice_->Insert("acct", "b", Doc(R"({"balance":0})")).ok());

  ClientTransaction tx(bob_.get());
  auto a = tx.Read("acct", "a");
  ASSERT_TRUE(a.status.ok());
  const int64_t amount = 40;
  db::Update debit;
  debit.Inc("balance", db::Value(-amount));
  db::Update credit;
  credit.Inc("balance", db::Value(amount));
  tx.Update("acct", "a", debit);
  tx.Update("acct", "b", credit);

  // Nothing visible before commit.
  EXPECT_EQ(db_.Get("acct", "a")->body.Find("balance")->as_int(), 100);

  auto commit = tx.Commit();
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_EQ(commit->applied.size(), 2u);
  EXPECT_EQ(db_.Get("acct", "a")->body.Find("balance")->as_int(), 60);
  EXPECT_EQ(db_.Get("acct", "b")->body.Find("balance")->as_int(), 40);
}

TEST_F(TransactionTest, ConcurrentWriteAborts) {
  ASSERT_TRUE(alice_->Insert("t", "x", Doc(R"({"v":1})")).ok());
  ClientTransaction tx(bob_.get());
  ASSERT_TRUE(tx.Read("t", "x").status.ok());

  // Alice writes between Bob's read and his commit.
  db::Update u;
  u.Set("v", db::Value(2));
  ASSERT_TRUE(alice_->Update("t", "x", u).ok());

  db::Update bump;
  bump.Inc("v", db::Value(10));
  tx.Update("t", "x", bump);
  auto commit = tx.Commit();
  EXPECT_TRUE(commit.status().IsAborted()) << commit.status().ToString();
  // The conflicting write was NOT applied.
  EXPECT_EQ(db_.Get("t", "x")->body.Find("v")->as_int(), 2);
  EXPECT_EQ(server_->transactions().aborted_count(), 1u);
}

TEST_F(TransactionTest, StaleCachedReadAborts) {
  // The key insight of §3.2: validation catches stale reads served by
  // caches.
  ASSERT_TRUE(alice_->Insert("t", "x", Doc(R"({"v":1})")).ok());
  (void)bob_->Read("t", "x");  // bob's cache now holds v1

  db::Update u;
  u.Set("v", db::Value(2));
  ASSERT_TRUE(alice_->Update("t", "x", u).ok());

  ClientTransaction tx(bob_.get());
  auto r = tx.Read("t", "x");  // served stale from bob's cache
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.doc.Find("v")->as_int(), 1);
  auto commit = tx.Commit();
  EXPECT_TRUE(commit.status().IsAborted());
}

TEST_F(TransactionTest, RetryAfterAbortSucceeds) {
  ASSERT_TRUE(alice_->Insert("t", "x", Doc(R"({"v":1})")).ok());
  (void)bob_->Read("t", "x");
  db::Update u;
  u.Set("v", db::Value(2));
  ASSERT_TRUE(alice_->Update("t", "x", u).ok());

  ClientTransaction tx(bob_.get());
  (void)tx.Read("t", "x");
  ASSERT_TRUE(tx.Commit().status().IsAborted());

  // Retry: a fresh transaction revalidates (strong read via EBF refresh).
  bob_->RefreshEbf();
  ClientTransaction retry(bob_.get());
  auto r = retry.Read("t", "x");
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.doc.Find("v")->as_int(), 2);
  EXPECT_TRUE(retry.Commit().ok());
}

TEST_F(TransactionTest, ObservedAbsenceValidated) {
  ClientTransaction tx(bob_.get());
  EXPECT_TRUE(tx.Read("t", "ghost").status.IsNotFound());
  // Alice creates the record before commit: the absence observation is
  // stale → abort.
  ASSERT_TRUE(alice_->Insert("t", "ghost", Doc("{}")).ok());
  EXPECT_TRUE(tx.Commit().status().IsAborted());
}

TEST_F(TransactionTest, InsertConflictAborts) {
  ClientTransaction tx(bob_.get());
  tx.Insert("t", "new", Doc(R"({"v":1})"));
  ASSERT_TRUE(alice_->Insert("t", "new", Doc(R"({"v":9})")).ok());
  EXPECT_TRUE(tx.Commit().status().IsAborted());
  EXPECT_EQ(db_.Get("t", "new")->body.Find("v")->as_int(), 9);
}

TEST_F(TransactionTest, OwnWritesVisibleInsideTransaction) {
  ASSERT_TRUE(alice_->Insert("t", "x", Doc(R"({"v":1})")).ok());
  ClientTransaction tx(bob_.get());
  tx.Insert("t", "y", Doc(R"({"v":10})"));
  auto y = tx.Read("t", "y");
  ASSERT_TRUE(y.status.ok());
  EXPECT_EQ(y.doc.Find("v")->as_int(), 10);

  auto x = tx.Read("t", "x");
  ASSERT_TRUE(x.status.ok());
  db::Update u;
  u.Inc("v", db::Value(5));
  tx.Update("t", "x", u);
  auto x2 = tx.Read("t", "x");
  EXPECT_EQ(x2.doc.Find("v")->as_int(), 6);  // overlay applied

  auto commit = tx.Commit();
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(db_.Get("t", "x")->body.Find("v")->as_int(), 6);
  EXPECT_EQ(db_.Get("t", "y")->body.Find("v")->as_int(), 10);
}

TEST_F(TransactionTest, DeleteVisibleInsideTransaction) {
  ASSERT_TRUE(alice_->Insert("t", "x", Doc(R"({"v":1})")).ok());
  ClientTransaction tx(bob_.get());
  ASSERT_TRUE(tx.Read("t", "x").status.ok());
  tx.Delete("t", "x");
  EXPECT_TRUE(tx.Read("t", "x").status.IsNotFound());
  ASSERT_TRUE(tx.Commit().ok());
  EXPECT_TRUE(db_.Get("t", "x").status().IsNotFound());
}

TEST_F(TransactionTest, ReadsAreRepeatable) {
  ASSERT_TRUE(alice_->Insert("t", "x", Doc(R"({"v":1})")).ok());
  ClientTransaction tx(bob_.get());
  auto r1 = tx.Read("t", "x");
  ASSERT_TRUE(r1.status.ok());
  // A concurrent write between the two reads is invisible inside the
  // transaction (snapshot in the overlay)...
  db::Update u;
  u.Set("v", db::Value(99));
  ASSERT_TRUE(alice_->Update("t", "x", u).ok());
  auto r2 = tx.Read("t", "x");
  EXPECT_EQ(r2.doc.Find("v")->as_int(), 1);
  // ...but of course dooms the commit.
  EXPECT_TRUE(tx.Commit().status().IsAborted());
}

TEST_F(TransactionTest, RollbackDiscardsEverything) {
  ClientTransaction tx(bob_.get());
  tx.Insert("t", "x", Doc(R"({"v":1})"));
  tx.Rollback();
  EXPECT_EQ(tx.write_count(), 0u);
  ASSERT_TRUE(tx.Commit().ok());  // empty commit
  EXPECT_TRUE(db_.Get("t", "x").status().IsNotFound());
}

TEST_F(TransactionTest, CommitIsOneShot) {
  ClientTransaction tx(bob_.get());
  ASSERT_TRUE(tx.Commit().ok());
  EXPECT_EQ(tx.Commit().status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(TransactionTest, CommittedWritesInvalidateCaches) {
  ASSERT_TRUE(alice_->Insert("t", "x", Doc(R"({"g":1})")).ok());
  db::Query q = db::Query::ParseJson("t", R"({"g":1})").value();
  (void)bob_->ExecuteQuery(q);  // cached + registered in InvaliDB
  clock_.Advance(kMicrosPerSecond);

  ClientTransaction tx(alice_.get());
  db::Update u;
  u.Set("g", db::Value(2));
  tx.Update("t", "x", u);
  ASSERT_TRUE(tx.Commit().ok());

  // The transactional write flows through the same invalidation pipeline.
  EXPECT_TRUE(server_->ebf().IsStale(q.NormalizedKey()));
}

TEST_F(TransactionTest, SessionAbsorbsCommittedWrites) {
  ClientTransaction tx(bob_.get());
  tx.Insert("t", "mine", Doc(R"({"v":7})"));
  ASSERT_TRUE(tx.Commit().ok());
  // Read-your-writes continues after the transaction.
  auto r = bob_->Read("t", "mine");
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.outcome.served_by, webcache::ServedBy::kClientCache);
  EXPECT_EQ(r.doc.Find("v")->as_int(), 7);
}

TEST_F(TransactionTest, UpdateOfMissingTargetAborts) {
  ClientTransaction tx(bob_.get());
  db::Update u;
  u.Set("v", db::Value(1));
  tx.Update("t", "nope", u);
  EXPECT_TRUE(tx.Commit().status().IsAborted());
}

TEST_F(TransactionTest, CounterStats) {
  ASSERT_TRUE(alice_->Insert("t", "x", Doc(R"({"v":1})")).ok());
  ClientTransaction ok_tx(bob_.get());
  (void)ok_tx.Read("t", "x");
  ASSERT_TRUE(ok_tx.Commit().ok());

  ClientTransaction bad_tx(bob_.get());
  (void)bad_tx.Read("t", "x");
  db::Update u;
  u.Set("v", db::Value(2));
  ASSERT_TRUE(alice_->Update("t", "x", u).ok());
  ASSERT_TRUE(bad_tx.Commit().status().IsAborted());

  EXPECT_EQ(server_->transactions().committed_count(), 1u);
  EXPECT_EQ(server_->transactions().aborted_count(), 1u);
}

}  // namespace
}  // namespace quaestor::client
