// Property-based tests: randomized traces cross-checked against
// independent reference implementations or invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "db/query.h"
#include "db/table.h"
#include "db/value.h"
#include "ebf/expiring_bloom_filter.h"
#include "invalidb/cluster.h"

namespace quaestor {
namespace {

using db::Value;

// ---------------------------------------------------------------------------
// Random document / query generators
// ---------------------------------------------------------------------------

Value RandomScalar(Rng& rng) {
  switch (rng.NextUint64(5)) {
    case 0:
      return Value(nullptr);
    case 1:
      return Value(rng.NextBool(0.5));
    case 2:
      return Value(static_cast<int64_t>(rng.NextUint64(20)) - 10);
    case 3:
      return Value(static_cast<double>(rng.NextUint64(100)) / 4.0);
    default:
      return Value("s" + std::to_string(rng.NextUint64(8)));
  }
}

Value RandomValue(Rng& rng, int depth) {
  if (depth <= 0) return RandomScalar(rng);
  switch (rng.NextUint64(7)) {
    case 0: {
      db::Array arr;
      const size_t n = rng.NextUint64(4);
      for (size_t i = 0; i < n; ++i) {
        arr.push_back(RandomValue(rng, depth - 1));
      }
      return Value(std::move(arr));
    }
    case 1: {
      db::Object obj;
      const size_t n = rng.NextUint64(3);
      for (size_t i = 0; i < n; ++i) {
        obj["k" + std::to_string(rng.NextUint64(4))] =
            RandomValue(rng, depth - 1);
      }
      return Value(std::move(obj));
    }
    default:
      return RandomScalar(rng);
  }
}

Value RandomDoc(Rng& rng) {
  db::Object obj;
  const size_t n = 1 + rng.NextUint64(5);
  for (size_t i = 0; i < n; ++i) {
    obj["f" + std::to_string(rng.NextUint64(6))] = RandomValue(rng, 2);
  }
  return Value(std::move(obj));
}

db::Predicate RandomPredicate(Rng& rng, int depth) {
  if (depth <= 0 || rng.NextBool(0.6)) {
    static const db::CompareOp kOps[] = {
        db::CompareOp::kEq,  db::CompareOp::kNe,      db::CompareOp::kGt,
        db::CompareOp::kGte, db::CompareOp::kLt,      db::CompareOp::kLte,
        db::CompareOp::kIn,  db::CompareOp::kContains, db::CompareOp::kExists,
    };
    const db::CompareOp op = kOps[rng.NextUint64(std::size(kOps))];
    Value operand;
    if (op == db::CompareOp::kIn) {
      db::Array arr;
      const size_t n = 1 + rng.NextUint64(3);
      for (size_t i = 0; i < n; ++i) arr.push_back(RandomScalar(rng));
      operand = Value(std::move(arr));
    } else if (op == db::CompareOp::kExists) {
      operand = Value(rng.NextBool(0.5));
    } else {
      operand = RandomScalar(rng);
    }
    return db::Predicate::Compare("f" + std::to_string(rng.NextUint64(6)),
                                  op, std::move(operand));
  }
  std::vector<db::Predicate> children;
  const size_t n = 1 + rng.NextUint64(2);
  for (size_t i = 0; i <= n; ++i) {
    children.push_back(RandomPredicate(rng, depth - 1));
  }
  switch (rng.NextUint64(3)) {
    case 0:
      return db::Predicate::And(std::move(children));
    case 1:
      return db::Predicate::Or(std::move(children));
    default:
      return db::Predicate::Not(std::move(children[0]));
  }
}

// ---------------------------------------------------------------------------
// Property: normalization is semantics-preserving across clause order
// ---------------------------------------------------------------------------

TEST(PropertyTest, NormalizedKeyEqualImpliesSameMatches) {
  Rng rng(2024);
  for (int round = 0; round < 200; ++round) {
    db::Predicate a = RandomPredicate(rng, 2);
    db::Predicate b = RandomPredicate(rng, 2);
    db::Query qa("t", a);
    db::Query qb("t", b);
    if (qa.NormalizedKey() != qb.NormalizedKey()) continue;
    for (int d = 0; d < 20; ++d) {
      Value doc = RandomDoc(rng);
      EXPECT_EQ(qa.Matches(doc), qb.Matches(doc))
          << qa.NormalizedKey() << " doc=" << doc.ToJson();
    }
  }
}

TEST(PropertyTest, ShuffledConjunctsShareKeyAndSemantics) {
  Rng rng(7);
  for (int round = 0; round < 100; ++round) {
    std::vector<db::Predicate> clauses;
    const size_t n = 2 + rng.NextUint64(3);
    for (size_t i = 0; i < n; ++i) {
      clauses.push_back(RandomPredicate(rng, 1));
    }
    std::vector<db::Predicate> shuffled = clauses;
    rng.Shuffle(shuffled);
    db::Query qa("t", db::Predicate::And(clauses));
    db::Query qb("t", db::Predicate::And(shuffled));
    EXPECT_EQ(qa.NormalizedKey(), qb.NormalizedKey());
    for (int d = 0; d < 10; ++d) {
      Value doc = RandomDoc(rng);
      EXPECT_EQ(qa.Matches(doc), qb.Matches(doc));
    }
  }
}

// ---------------------------------------------------------------------------
// Property: JSON canonical round-trip is the identity
// ---------------------------------------------------------------------------

TEST(PropertyTest, JsonRoundTripRandomValues) {
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    Value v = RandomValue(rng, 3);
    auto parsed = Value::FromJson(v.ToJson());
    ASSERT_TRUE(parsed.ok()) << v.ToJson();
    EXPECT_EQ(parsed.value(), v) << v.ToJson();
    EXPECT_EQ(parsed->ToJson(), v.ToJson());
  }
}

// ---------------------------------------------------------------------------
// Property: InvaliDB matching state == re-execution ground truth
// ---------------------------------------------------------------------------

TEST(PropertyTest, InvalidbTracksGroundTruthUnderRandomTrace) {
  SimulatedClock clock(0);
  Rng rng(4711);
  db::Table table("t");

  // A few random (but fixed) queries.
  std::vector<db::Query> queries;
  for (int i = 0; i < 8; ++i) {
    queries.emplace_back("t", RandomPredicate(rng, 2));
  }

  // Track live membership per query from notifications.
  std::map<std::string, std::set<std::string>> tracked;
  invalidb::InvalidbOptions opts;
  opts.query_partitions = 2;
  opts.object_partitions = 2;
  invalidb::InvalidbCluster cluster(
      &clock, opts, [&](const invalidb::Notification& n) {
        if (n.type == invalidb::NotificationType::kAdd) {
          EXPECT_TRUE(tracked[n.query_key].insert(n.record_id).second)
              << "duplicate add for " << n.record_id;
        } else if (n.type == invalidb::NotificationType::kRemove) {
          EXPECT_EQ(tracked[n.query_key].erase(n.record_id), 1u)
              << "remove of non-member " << n.record_id;
        }
      });
  for (const db::Query& q : queries) {
    ASSERT_TRUE(cluster.RegisterQuery(q, {}, invalidb::kEventsAll).ok());
    tracked[q.NormalizedKey()] = {};
  }

  // Random writes; after each, tracked membership must equal a fresh
  // evaluation against the table.
  for (int step = 0; step < 300; ++step) {
    clock.Advance(1000);
    const std::string id = "d" + std::to_string(rng.NextUint64(20));
    db::ChangeEvent ev;
    ev.commit_time = clock.NowMicros();
    if (rng.NextBool(0.15) && table.Get(id).ok()) {
      auto doc = table.Delete(id, clock.NowMicros());
      ASSERT_TRUE(doc.ok());
      ev.kind = db::WriteKind::kDelete;
      ev.after = doc.value();
    } else {
      auto doc = table.Upsert(id, RandomDoc(rng), clock.NowMicros());
      ASSERT_TRUE(doc.ok());
      ev.kind = db::WriteKind::kUpdate;
      ev.after = doc.value();
    }
    cluster.OnChange(ev);

    if (step % 10 == 9) {
      for (const db::Query& q : queries) {
        std::set<std::string> truth;
        for (const db::Document& d : table.Execute(q)) truth.insert(d.id);
        EXPECT_EQ(tracked[q.NormalizedKey()], truth)
            << "step " << step << " query " << q.NormalizedKey();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Property: sorted-layer window == windowed re-execution ground truth
// ---------------------------------------------------------------------------

TEST(PropertyTest, SortedWindowTracksGroundTruth) {
  SimulatedClock clock(0);
  Rng rng(31337);
  db::Table table("t");

  db::Query q = db::Query::ParseJson("t", R"({"score":{"$gte":0}})").value();
  q.SetOrderBy({{"score", false}}).SetLimit(3).SetOffset(1);

  invalidb::InvalidbCluster cluster(&clock, {},
                                    [](const invalidb::Notification&) {});
  ASSERT_TRUE(cluster.RegisterQuery(q, {}, invalidb::kEventsAll).ok());

  for (int step = 0; step < 300; ++step) {
    clock.Advance(1000);
    const std::string id = "d" + std::to_string(rng.NextUint64(12));
    db::ChangeEvent ev;
    ev.commit_time = clock.NowMicros();
    if (rng.NextBool(0.2) && table.Get(id).ok()) {
      auto doc = table.Delete(id, clock.NowMicros());
      ASSERT_TRUE(doc.ok());
      ev.kind = db::WriteKind::kDelete;
      ev.after = doc.value();
    } else {
      db::Object body;
      // Occasionally negative → leaves the predicate.
      body["score"] =
          Value(static_cast<int64_t>(rng.NextUint64(40)) - 5);
      auto doc = table.Upsert(id, Value(std::move(body)),
                              clock.NowMicros());
      ASSERT_TRUE(doc.ok());
      ev.kind = db::WriteKind::kUpdate;
      ev.after = doc.value();
    }
    cluster.OnChange(ev);

    std::vector<std::string> truth;
    for (const db::Document& d : table.Execute(q)) truth.push_back(d.id);
    EXPECT_EQ(cluster.SortedWindow(q.NormalizedKey()), truth)
        << "step " << step;
  }
}

// ---------------------------------------------------------------------------
// Property: EBF never misses a truly stale key (Theorem 1 direction)
// ---------------------------------------------------------------------------

TEST(PropertyTest, EbfHasNoFalseNegativesUnderRandomTrace) {
  SimulatedClock clock(0);
  Rng rng(555);
  ebf::ExpiringBloomFilter filter(&clock);

  // Reference: for each key, the set of issued (expire_at) and the last
  // invalidation; a key is truly stale at t if some copy issued before an
  // invalidation is still unexpired.
  struct RefState {
    Micros max_expire_at = 0;    // highest TTL issued
    Micros stale_until = 0;      // from reference semantics
  };
  std::map<std::string, RefState> ref;

  for (int step = 0; step < 2000; ++step) {
    const std::string key = "k" + std::to_string(rng.NextUint64(30));
    switch (rng.NextUint64(3)) {
      case 0: {
        const Micros ttl =
            static_cast<Micros>(1 + rng.NextUint64(20)) * kMicrosPerSecond;
        filter.ReportRead(key, ttl);
        RefState& st = ref[key];
        st.max_expire_at =
            std::max(st.max_expire_at, clock.NowMicros() + ttl);
        break;
      }
      case 1: {
        filter.ReportWrite(key);
        RefState& st = ref[key];
        if (st.max_expire_at > clock.NowMicros()) {
          st.stale_until = std::max(st.stale_until, st.max_expire_at);
        }
        break;
      }
      default:
        clock.Advance(rng.NextUint64(3) * kMicrosPerSecond);
        break;
    }
    // Invariant: every truly-stale key is flagged by the snapshot (false
    // positives allowed, false negatives never).
    ebf::BloomFilter snap = filter.Snapshot();
    for (const auto& [k, st] : ref) {
      if (st.stale_until > clock.NowMicros()) {
        ASSERT_TRUE(snap.MaybeContains(k))
            << "step " << step << " missing stale key " << k;
        ASSERT_TRUE(filter.IsStale(k));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Property: indexed execution equals scan execution on random data
// ---------------------------------------------------------------------------

TEST(PropertyTest, IndexedExecutionMatchesScan) {
  Rng rng(808);
  db::Table indexed("t");
  db::Table plain("t");
  indexed.CreateIndex("f0");
  indexed.CreateIndex("f1");

  for (int i = 0; i < 200; ++i) {
    const std::string id = "d" + std::to_string(i);
    Value doc = RandomDoc(rng);
    ASSERT_TRUE(indexed.Insert(id, doc, 1).ok());
    ASSERT_TRUE(plain.Insert(id, doc, 1).ok());
  }
  for (int round = 0; round < 300; ++round) {
    db::Query q("t", RandomPredicate(rng, 2));
    const auto a = indexed.Execute(q);
    const auto b = plain.Execute(q);
    ASSERT_EQ(a.size(), b.size()) << q.NormalizedKey();
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id) << q.NormalizedKey();
    }
  }
}

}  // namespace
}  // namespace quaestor
