#include <gtest/gtest.h>

#include <memory>

#include "client/live_query.h"
#include "common/clock.h"
#include "core/server.h"
#include "core/streams.h"
#include "common/random.h"
#include "db/database.h"

namespace quaestor::client {
namespace {

db::Value Doc(const char* json) {
  auto v = db::Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

db::Query Q(const char* table, const char* filter) {
  auto q = db::Query::ParseJson(table, filter);
  EXPECT_TRUE(q.ok());
  return q.value();
}

class LiveQueryTest : public ::testing::Test {
 protected:
  LiveQueryTest() : clock_(0), db_(&clock_) {
    server_ = std::make_unique<core::QuaestorServer>(&clock_, &db_);
    hub_ = std::make_unique<core::ChangeStreamHub>(server_.get());
  }

  SimulatedClock clock_;
  db::Database db_;
  std::unique_ptr<core::QuaestorServer> server_;
  std::unique_ptr<core::ChangeStreamHub> hub_;
};

TEST_F(LiveQueryTest, InitialResultPopulated) {
  ASSERT_TRUE(server_->Insert("t", "a", Doc(R"({"g":1})")).ok());
  ASSERT_TRUE(server_->Insert("t", "b", Doc(R"({"g":2})")).ok());
  LiveQuery live(hub_.get(), server_.get(), Q("t", R"({"g":1})"));
  ASSERT_TRUE(live.status().ok());
  EXPECT_EQ(live.Ids(), std::vector<std::string>{"a"});
}

TEST_F(LiveQueryTest, TracksMembershipChanges) {
  LiveQuery live(hub_.get(), server_.get(), Q("t", R"({"g":1})"));
  ASSERT_TRUE(live.status().ok());
  EXPECT_EQ(live.size(), 0u);

  ASSERT_TRUE(server_->Insert("t", "a", Doc(R"({"g":1})")).ok());
  EXPECT_EQ(live.size(), 1u);

  db::Update u;
  u.Set("g", db::Value(2));
  ASSERT_TRUE(server_->Update("t", "a", u).ok());
  EXPECT_EQ(live.size(), 0u);
  EXPECT_GE(live.change_count(), 2u);
  EXPECT_EQ(live.resync_count(), 0u);
}

TEST_F(LiveQueryTest, TracksBodyChanges) {
  ASSERT_TRUE(server_->Insert("t", "a", Doc(R"({"g":1,"views":0})")).ok());
  LiveQuery live(hub_.get(), server_.get(), Q("t", R"({"g":1})"));
  db::Update u;
  u.Inc("views", db::Value(5));
  ASSERT_TRUE(server_->Update("t", "a", u).ok());
  auto snap = live.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].body.Find("views")->as_int(), 5);
}

TEST_F(LiveQueryTest, SortedWindowStaysOrdered) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server_
                    ->Insert("t", "d" + std::to_string(i),
                             Doc(("{\"score\":" + std::to_string(i * 10) +
                                  "}")
                                     .c_str()))
                    .ok());
  }
  db::Query top = Q("t", R"({"score":{"$gte":0}})");
  top.SetOrderBy({{"score", false}}).SetLimit(3);
  LiveQuery live(hub_.get(), server_.get(), top);
  EXPECT_EQ(live.Ids(), (std::vector<std::string>{"d4", "d3", "d2"}));

  // A new top scorer enters at index 0.
  ASSERT_TRUE(server_->Insert("t", "hot", Doc(R"({"score":999})")).ok());
  EXPECT_EQ(live.Ids(), (std::vector<std::string>{"hot", "d4", "d3"}));

  // A member's score change reorders the window.
  db::Update u;
  u.Set("score", db::Value(50000));
  ASSERT_TRUE(server_->Update("t", "d3", u).ok());
  EXPECT_EQ(live.Ids(), (std::vector<std::string>{"d3", "hot", "d4"}));

  // Ground truth agreement after every mutation.
  auto truth = db_.Execute(top);
  auto snap = live.Snapshot();
  ASSERT_EQ(snap.size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(snap[i].id, truth[i].id);
  }
  EXPECT_EQ(live.resync_count(), 0u);
}

TEST_F(LiveQueryTest, ListenerFiresOnEveryChange) {
  LiveQuery live(hub_.get(), server_.get(), Q("t", R"({"g":1})"));
  int fired = 0;
  live.SetListener([&] { fired++; });
  ASSERT_TRUE(server_->Insert("t", "a", Doc(R"({"g":1})")).ok());
  db::Update u;
  u.Inc("n", db::Value(1));
  ASSERT_TRUE(server_->Update("t", "a", u).ok());
  EXPECT_EQ(fired, 2);
}

TEST_F(LiveQueryTest, UnsubscribesOnDestruction) {
  const db::Query q = Q("t", R"({"g":1})");
  {
    LiveQuery live(hub_.get(), server_.get(), q);
    EXPECT_EQ(hub_->SubscriberCount(q.NormalizedKey()), 1u);
  }
  EXPECT_EQ(hub_->SubscriberCount(q.NormalizedKey()), 0u);
}

TEST_F(LiveQueryTest, ManyWritesConvergeToGroundTruth) {
  LiveQuery live(hub_.get(), server_.get(), Q("t", R"({"g":{"$lte":3}})"));
  Rng rng(5);
  for (int step = 0; step < 200; ++step) {
    const std::string id = "d" + std::to_string(rng.NextUint64(15));
    if (db_.Get("t", id).ok()) {
      if (rng.NextBool(0.2)) {
        ASSERT_TRUE(server_->Delete("t", id).ok());
      } else {
        db::Update u;
        u.Set("g", db::Value(static_cast<int64_t>(rng.NextUint64(8))));
        ASSERT_TRUE(server_->Update("t", id, u).ok());
      }
    } else {
      ASSERT_TRUE(
          server_
              ->Insert("t", id,
                       Doc(("{\"g\":" +
                            std::to_string(rng.NextUint64(8)) + "}")
                               .c_str()))
              .ok());
    }
  }
  std::vector<std::string> truth;
  for (const auto& d : db_.Execute(Q("t", R"({"g":{"$lte":3}})"))) {
    truth.push_back(d.id);
  }
  EXPECT_EQ(live.Ids(), truth);
}

}  // namespace
}  // namespace quaestor::client
