// End-to-end loopback integration tests for the real-socket serving
// layer: a QuaestorClient speaking HTTP/1.1 to a NetServer over
// 127.0.0.1, with the InvaliDB data path bridged to a NetWorker over
// the length-prefixed TCP frame protocol and CDN purges fanned out to a
// socket subscriber — the full client → HTTP server → InvaliDB-over-TCP
// → notification → CDN purge path, checked by the consistency oracle.
//
// Everything binds ephemeral ports (the port-collision-safe fixture),
// and all timing is real: SystemClock, actual sockets, background
// pollers. Freshness waits poll with generous deadlines instead of
// assuming scheduling latencies.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "check/oracle.h"
#include "client/client.h"
#include "common/clock.h"
#include "core/server.h"
#include "db/database.h"
#include "db/update.h"
#include "net/event_loop.h"
#include "net/http_client.h"
#include "net/queue_bridge.h"
#include "net/service.h"
#include "webcache/web_cache.h"

namespace quaestor::net {
namespace {

bool WaitFor(const std::function<bool()>& cond, int64_t timeout_ms = 10000) {
  const int64_t deadline = EventLoop::MonotonicNow() + timeout_ms * 1000;
  while (EventLoop::MonotonicNow() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

db::Value Doc(const char* json) {
  auto v = db::Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

db::Query Q(const char* table, const char* filter) {
  auto q = db::Query::ParseJson(table, filter);
  EXPECT_TRUE(q.ok());
  return q.value();
}

/// The whole deployment on loopback: origin + HTTP front-end + frame
/// hub in one process "node", a matching worker dialed in over TCP, a
/// remote CDN fed purges over the wire, and HTTP-backed SDK sessions.
class LoopbackStack : public ::testing::Test {
 protected:
  LoopbackStack() : db_(&clock_) {}

  void Start(Micros delta = 100 * kMicrosPerMilli) {
    server_ = std::make_unique<core::QuaestorServer>(&clock_, &db_,
                                                     core::ServerOptions());

    // Oracle listens to the raw commit stream. Commits happen on the
    // server's event-loop thread while checks run on the test thread,
    // so every oracle touch goes through oracle_mu_.
    check::OracleOptions oopts;
    // The clients revalidate after `delta`; the asserted bound is looser
    // so CI scheduling jitter cannot fake a violation. Freshness is
    // asserted separately by the explicit convergence waits below.
    oopts.delta = 2 * kMicrosPerSecond;
    oracle_ = std::make_unique<check::ConsistencyOracle>(&clock_, &db_, oopts);
    db_.AddChangeListener([this](const db::ChangeEvent& ev) {
      std::lock_guard<std::mutex> lock(oracle_mu_);
      oracle_->OnCommit(ev);
    });

    NetOptions nopts;
    nopts.enabled = true;
    nopts.remote_invalidb = true;
    nopts.reconnect_backoff = 5 * kMicrosPerMilli;
    // Registrations / notifications cross a real TCP link that the
    // tests are allowed to sever: the reliable layer retransmits.
    nopts.transport.reliable.enabled = true;
    nopts.transport.reliable.retransmit_timeout = 30 * kMicrosPerMilli;
    net_ = std::make_unique<NetServer>(&clock_, server_.get(), nopts);
    ASSERT_TRUE(net_->Start());
    ASSERT_NE(net_->http_port(), 0);
    ASSERT_NE(net_->frame_port(), 0);

    worker_ = std::make_unique<NetWorker>(&clock_, net_->frame_port(), nopts);
    ASSERT_TRUE(worker_->Start());

    // The "CDN node": an invalidation cache on the far side of the
    // frame protocol, purged by the origin's fan-out channel.
    cdn_ = std::make_unique<webcache::InvalidationCache>(&clock_);
    ASSERT_TRUE(purge_loop_.Start());
    purge_client_ = std::make_unique<FrameClient>(
        &purge_loop_, net_->frame_port(), 5 * kMicrosPerMilli);
    purge_client_->Subscribe("purge", [this](const Frame& f) {
      cdn_->Purge(f.payload);
    });
    purge_client_->Connect();

    // Worker + purge subscriber both dialed in.
    ASSERT_TRUE(WaitFor([this] { return net_->hub()->connections() == 2; }));
    delta_ = delta;
  }

  /// One browser session over its own HTTP connection.
  std::unique_ptr<client::QuaestorClient> Session(
      std::unique_ptr<webcache::ExpirationCache>* browser_out,
      std::unique_ptr<HttpBackend>* backend_out) {
    *backend_out = std::make_unique<HttpBackend>(net_->http_port());
    *browser_out = std::make_unique<webcache::ExpirationCache>(&clock_);
    client::ClientOptions copts;
    copts.ebf_refresh_interval = delta_;
    auto c = std::make_unique<client::QuaestorClient>(
        &clock_, backend_out->get(), browser_out->get(), cdn_.get(), copts);
    c->Connect();
    return c;
  }

  void TearDown() override {
    if (purge_client_) purge_client_->Close();
    purge_loop_.Stop();
    if (worker_) worker_->Stop();
    if (net_) net_->Stop();
  }

  void ExpectNoViolations() {
    std::lock_guard<std::mutex> lock(oracle_mu_);
    for (const auto& v : oracle_->violations()) {
      ADD_FAILURE() << v.ToString();
    }
    EXPECT_TRUE(oracle_->violations().empty());
  }

  SystemClock clock_;
  db::Database db_;
  Micros delta_ = 100 * kMicrosPerMilli;
  std::unique_ptr<core::QuaestorServer> server_;
  std::mutex oracle_mu_;
  std::unique_ptr<check::ConsistencyOracle> oracle_;
  std::unique_ptr<NetServer> net_;
  std::unique_ptr<NetWorker> worker_;
  std::unique_ptr<webcache::InvalidationCache> cdn_;
  EventLoop purge_loop_;
  std::unique_ptr<FrameClient> purge_client_;
};

TEST_F(LoopbackStack, RecordWritesReadsAndInvalidationAcrossTheWire) {
  Start();
  std::unique_ptr<webcache::ExpirationCache> b1, b2;
  std::unique_ptr<HttpBackend> be1, be2;
  auto c1 = Session(&b1, &be1);
  auto c2 = Session(&b2, &be2);

  // Write through HTTP, then read-your-writes from the session cache.
  ASSERT_TRUE(c1->Insert("t", "1", Doc(R"({"x":1})")).ok());
  client::ReadResult r1 = c1->Read("t", "1");
  ASSERT_TRUE(r1.status.ok());
  EXPECT_EQ(r1.doc.Find("x")->as_int(), 1);
  {
    std::lock_guard<std::mutex> lock(oracle_mu_);
    oracle_->CheckRead("c1", "t/1", r1.status.ok(), r1.version);
  }

  // A second session's cold read crosses the wire to the origin and
  // warms the shared CDN.
  client::ReadResult r2 = c2->Read("t", "1");
  ASSERT_TRUE(r2.status.ok());
  EXPECT_EQ(r2.doc.Find("x")->as_int(), 1);
  {
    std::lock_guard<std::mutex> lock(oracle_mu_);
    oracle_->CheckRead("c2", "t/1", r2.status.ok(), r2.version);
  }

  // c1 updates; the origin's purge crosses the frame protocol to the
  // CDN node, and c2 converges once its EBF window forces a
  // revalidation. Every intermediate read is oracle-checked.
  db::Update u;
  u.Set("x", db::Value(2));
  auto updated = c1->Update("t", "1", u);
  ASSERT_TRUE(updated.ok());
  const uint64_t fresh_version = updated.value().version;

  ASSERT_TRUE(WaitFor([&] {
    client::ReadResult r = c2->Read("t", "1");
    {
      std::lock_guard<std::mutex> lock(oracle_mu_);
      oracle_->CheckRead("c2", "t/1", r.status.ok(), r.version);
    }
    return r.status.ok() && r.version >= fresh_version;
  }));
  // The purge really arrived over the socket (origin-side fan-out → the
  // subscribed CDN), not just via TTL expiry.
  EXPECT_TRUE(WaitFor([&] { return cdn_->PurgeCount() > 0; }));
  ExpectNoViolations();
}

TEST_F(LoopbackStack, QueryNotificationFlowsInvalidbOverTcp) {
  Start();
  std::unique_ptr<webcache::ExpirationCache> b1, b2;
  std::unique_ptr<HttpBackend> be1, be2;
  auto c1 = Session(&b1, &be1);
  auto c2 = Session(&b2, &be2);

  ASSERT_TRUE(c1->Insert("t", "1", Doc(R"({"g":1})")).ok());
  ASSERT_TRUE(c1->Insert("t", "2", Doc(R"({"g":2})")).ok());

  const db::Query q = Q("t", R"({"g":1})");
  {
    std::lock_guard<std::mutex> lock(oracle_mu_);
    oracle_->TrackQuery(q);
  }

  // First execution registers the query with the matching cluster over
  // the frame link (reliable, so a slow worker handshake cannot lose
  // the registration).
  client::QueryResult qr = c1->ExecuteQuery(q);
  ASSERT_TRUE(qr.status.ok());
  EXPECT_EQ(qr.ids.size(), 1u);
  {
    std::lock_guard<std::mutex> lock(oracle_mu_);
    oracle_->CheckQuery("c1", q, qr.status.ok(), qr.etag, qr.representation);
  }

  // A write that moves t/2 into the result: the change event travels
  // origin → worker over TCP, the match comes back as a notification,
  // and the origin purges the cached result. Poll until both sessions
  // observe the two-element result.
  db::Update u;
  u.Set("g", db::Value(1));
  ASSERT_TRUE(c2->Update("t", "2", u).ok());

  for (auto* session : {c1.get(), c2.get()}) {
    const char* name = session == c1.get() ? "c1" : "c2";
    ASSERT_TRUE(WaitFor([&] {
      client::QueryResult r = session->ExecuteQuery(q);
      {
        std::lock_guard<std::mutex> lock(oracle_mu_);
        oracle_->CheckQuery(name, q, r.status.ok(), r.etag, r.representation);
      }
      return r.status.ok() && r.ids.size() == 2;
    })) << name;
  }

  // The notification data path really ran remotely: the worker's
  // cluster did the matching on the far side of the socket.
  EXPECT_GT(worker_->bridged_kv()->deliveries(), 0u);
  EXPECT_GT(net_->bridged_kv()->deliveries(), 0u);
  ExpectNoViolations();
}

TEST_F(LoopbackStack, ConditionalFetchRevalidatesWith304OverTheWire) {
  Start();
  std::unique_ptr<webcache::ExpirationCache> b1;
  std::unique_ptr<HttpBackend> be1;
  auto c1 = Session(&b1, &be1);
  ASSERT_TRUE(c1->Insert("t", "1", Doc(R"({"x":1})")).ok());

  // Unconditional fetch yields the body + etag; revalidating with that
  // etag yields 304 with no body — the exact webcache::http.h contract,
  // over a real socket.
  HttpBackend direct(net_->http_port());
  webcache::HttpRequest req;
  req.key = "t/1";
  webcache::HttpResponse full = direct.Fetch(req);
  ASSERT_TRUE(full.ok);
  ASSERT_NE(full.etag, 0u);
  EXPECT_FALSE(full.body.empty());
  EXPECT_GT(full.ttl, 0);
  EXPECT_GT(full.last_modified, 0);

  req.has_if_none_match = true;
  req.if_none_match = full.etag;
  webcache::HttpResponse revalidated = direct.Fetch(req);
  EXPECT_TRUE(revalidated.not_modified);
  EXPECT_TRUE(revalidated.body.empty());

  // A missing record is a plain miss, not a transport error.
  webcache::HttpRequest missing;
  missing.key = "t/no-such";
  webcache::HttpResponse miss = direct.Fetch(missing);
  EXPECT_FALSE(miss.ok);
  EXPECT_FALSE(miss.unavailable);
}

TEST_F(LoopbackStack, WriteErrorsCarryExactStatusCodesAcrossHttp) {
  Start();
  std::unique_ptr<webcache::ExpirationCache> b1;
  std::unique_ptr<HttpBackend> be1;
  auto c1 = Session(&b1, &be1);

  // Updating a record that does not exist: the origin's NotFound must
  // survive the HTTP hop as the same status code, not a generic error.
  db::Update u;
  u.Set("x", db::Value(1));
  auto missing = c1->Update("t", "nope", u);
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound()) << missing.status().ToString();

  // Duplicate insert surfaces the origin's error code too.
  ASSERT_TRUE(c1->Insert("t", "1", Doc(R"({"x":1})")).ok());
  auto dup = c1->Insert("t", "1", Doc(R"({"x":2})"));
  EXPECT_FALSE(dup.ok());
  EXPECT_FALSE(dup.status().IsUnavailable()) << dup.status().ToString();

  // Delete round-trips ok and the record is gone for readers.
  ASSERT_TRUE(c1->Delete("t", "1").ok());
  ASSERT_TRUE(WaitFor([&] {
    client::ReadResult r = c1->Read("t", "1");
    return !r.status.ok();
  }));
}

}  // namespace
}  // namespace quaestor::net
