#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>

#include "client/client.h"
#include "common/clock.h"
#include "core/server.h"
#include "db/database.h"
#include "webcache/web_cache.h"

namespace quaestor::client {
namespace {

constexpr Micros kSecond = kMicrosPerSecond;

db::Value Doc(const char* json) {
  auto v = db::Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

db::Query Q(const char* table, const char* filter) {
  auto q = db::Query::ParseJson(table, filter);
  EXPECT_TRUE(q.ok());
  return q.value();
}

class ClientTest : public ::testing::Test {
 protected:
  ClientTest() : clock_(0), db_(&clock_) {}

  void MakeStack(ClientOptions copts = ClientOptions(),
                 core::ServerOptions sopts = core::ServerOptions()) {
    server_ = std::make_unique<core::QuaestorServer>(&clock_, &db_, sopts);
    cdn_ = std::make_unique<webcache::InvalidationCache>(&clock_);
    server_->AddPurgeTarget(
        [this](const std::string& key) { cdn_->Purge(key); });
    browser_ = std::make_unique<webcache::ExpirationCache>(&clock_);
    client_ = std::make_unique<QuaestorClient>(
        &clock_, server_.get(), browser_.get(), cdn_.get(), copts);
    client_->Connect();
  }

  /// A second, independent browser session sharing server and CDN.
  std::unique_ptr<QuaestorClient> OtherClient(
      ClientOptions copts = ClientOptions()) {
    other_cache_ = std::make_unique<webcache::ExpirationCache>(&clock_);
    auto c = std::make_unique<QuaestorClient>(
        &clock_, server_.get(), other_cache_.get(), cdn_.get(), copts);
    c->Connect();
    return c;
  }

  SimulatedClock clock_;
  db::Database db_;
  std::unique_ptr<core::QuaestorServer> server_;
  std::unique_ptr<webcache::InvalidationCache> cdn_;
  std::unique_ptr<webcache::ExpirationCache> browser_;
  std::unique_ptr<webcache::ExpirationCache> other_cache_;
  std::unique_ptr<QuaestorClient> client_;
};

TEST_F(ClientTest, ReadThroughCachesWarmsUp) {
  MakeStack();
  ASSERT_TRUE(client_->Insert("t", "1", Doc(R"({"x":1})")).ok());
  // Own write is in the session cache (read-your-writes).
  ReadResult r1 = client_->Read("t", "1");
  ASSERT_TRUE(r1.status.ok());
  EXPECT_EQ(r1.outcome.served_by, webcache::ServedBy::kClientCache);
  EXPECT_EQ(r1.doc.Find("x")->as_int(), 1);
}

TEST_F(ClientTest, ColdReadGoesToOriginThenCaches) {
  MakeStack();
  ASSERT_TRUE(db_.Insert("t", "1", Doc(R"({"x":1})")).ok());  // out-of-band
  ReadResult r1 = client_->Read("t", "1");
  EXPECT_EQ(r1.outcome.served_by, webcache::ServedBy::kOrigin);
  EXPECT_GT(r1.outcome.latency_ms, 100.0);
  ReadResult r2 = client_->Read("t", "1");
  EXPECT_EQ(r2.outcome.served_by, webcache::ServedBy::kClientCache);
  EXPECT_DOUBLE_EQ(r2.outcome.latency_ms, 0.0);
}

TEST_F(ClientTest, MissingRecordReturnsNotFound) {
  MakeStack();
  EXPECT_TRUE(client_->Read("t", "missing").status.IsNotFound());
}

TEST_F(ClientTest, QueryObjectListFillsRecordCache) {
  MakeStack();
  ASSERT_TRUE(db_.Insert("t", "1", Doc(R"({"g":1})")).ok());
  ASSERT_TRUE(db_.Insert("t", "2", Doc(R"({"g":1})")).ok());
  QueryResult qr = client_->ExecuteQuery(Q("t", R"({"g":1})"));
  ASSERT_TRUE(qr.status.ok());
  EXPECT_EQ(qr.docs.size(), 2u);
  EXPECT_EQ(qr.outcome.served_by, webcache::ServedBy::kOrigin);
  // Records of the result are now individually cached (§6.2): a record
  // read is a client-cache hit without ever fetching the record itself.
  ReadResult rr = client_->Read("t", "1");
  EXPECT_EQ(rr.outcome.served_by, webcache::ServedBy::kClientCache);
}

TEST_F(ClientTest, SecondQueryIsClientCacheHit) {
  MakeStack();
  ASSERT_TRUE(db_.Insert("t", "1", Doc(R"({"g":1})")).ok());
  (void)client_->ExecuteQuery(Q("t", R"({"g":1})"));
  QueryResult qr = client_->ExecuteQuery(Q("t", R"({"g":1})"));
  EXPECT_EQ(qr.outcome.served_by, webcache::ServedBy::kClientCache);
  EXPECT_EQ(qr.docs.size(), 1u);  // docs parsed from the cached body
}

TEST_F(ClientTest, EbfTriggersRevalidationAfterRemoteWrite) {
  ClientOptions copts;
  copts.ebf_refresh_interval = 10 * kSecond;
  MakeStack(copts);
  ASSERT_TRUE(db_.Insert("t", "1", Doc(R"({"x":1})")).ok());
  (void)client_->Read("t", "1");  // cached

  // Another client updates the record.
  auto other = OtherClient();
  clock_.Advance(1 * kSecond);
  db::Update u;
  u.Set("x", db::Value(2));
  ASSERT_TRUE(other->Update("t", "1", u).ok());

  // Our cached copy is stale, but the EBF is 1 s old and does not know
  // yet → stale read possible (bounded by ∆).
  clock_.Advance(1 * kSecond);
  ReadResult stale = client_->Read("t", "1");
  EXPECT_EQ(stale.doc.Find("x")->as_int(), 1);

  // Refresh the EBF: the flagged key now forces a revalidation.
  client_->RefreshEbf();
  ReadResult fresh = client_->Read("t", "1");
  EXPECT_TRUE(fresh.outcome.revalidated);
  EXPECT_EQ(fresh.doc.Find("x")->as_int(), 2);
}

TEST_F(ClientTest, DeltaAtomicityBound) {
  // Staleness never exceeds ∆ = the EBF refresh interval: after ∆ passes,
  // the next read is promoted to a revalidation and must see fresh data.
  ClientOptions copts;
  copts.ebf_refresh_interval = 5 * kSecond;
  MakeStack(copts);
  ASSERT_TRUE(db_.Insert("t", "1", Doc(R"({"x":1})")).ok());
  (void)client_->Read("t", "1");

  auto other = OtherClient();
  clock_.Advance(1 * kSecond);
  db::Update u;
  u.Set("x", db::Value(2));
  ASSERT_TRUE(other->Update("t", "1", u).ok());

  // ∆ elapses → automatic refresh on the next request.
  clock_.Advance(5 * kSecond);
  ReadResult r = client_->Read("t", "1");
  EXPECT_TRUE(r.outcome.ebf_refreshed);
  EXPECT_EQ(r.doc.Find("x")->as_int(), 2);
}

TEST_F(ClientTest, WhitelistAvoidsRepeatedRevalidation) {
  ClientOptions copts;
  copts.ebf_refresh_interval = 100 * kSecond;
  MakeStack(copts);
  ASSERT_TRUE(db_.Insert("t", "1", Doc(R"({"x":1})")).ok());
  (void)client_->Read("t", "1");
  auto other = OtherClient();
  clock_.Advance(1 * kSecond);
  db::Update u;
  u.Set("x", db::Value(2));
  ASSERT_TRUE(other->Update("t", "1", u).ok());
  client_->RefreshEbf();
  ReadResult r1 = client_->Read("t", "1");
  EXPECT_TRUE(r1.outcome.revalidated);
  // The key is whitelisted after revalidation; the next read within the
  // same EBF generation is served from cache.
  ReadResult r2 = client_->Read("t", "1");
  EXPECT_FALSE(r2.outcome.revalidated);
  EXPECT_EQ(r2.outcome.served_by, webcache::ServedBy::kClientCache);
  EXPECT_EQ(r2.doc.Find("x")->as_int(), 2);
}

TEST_F(ClientTest, ReadYourWrites) {
  MakeStack();
  ASSERT_TRUE(client_->Insert("t", "1", Doc(R"({"x":1})")).ok());
  db::Update u;
  u.Set("x", db::Value(42));
  ASSERT_TRUE(client_->Update("t", "1", u).ok());
  ReadResult r = client_->Read("t", "1");
  EXPECT_EQ(r.doc.Find("x")->as_int(), 42);
  EXPECT_EQ(r.outcome.served_by, webcache::ServedBy::kClientCache);
}

TEST_F(ClientTest, DeleteDropsOwnCacheEntry) {
  MakeStack();
  ASSERT_TRUE(client_->Insert("t", "1", Doc(R"({"x":1})")).ok());
  ASSERT_TRUE(client_->Delete("t", "1").ok());
  EXPECT_TRUE(client_->Read("t", "1").status.IsNotFound());
}

TEST_F(ClientTest, MonotonicReadsRevalidateOnRegression) {
  ClientOptions copts;
  copts.ebf_refresh_interval = 1000 * kSecond;  // effectively static EBF
  MakeStack(copts);
  ASSERT_TRUE(db_.Insert("t", "1", Doc(R"({"x":1})")).ok());

  // Session sees version 2 via its own write.
  db::Update u;
  u.Set("x", db::Value(2));
  ASSERT_TRUE(client_->Update("t", "1", u).ok());

  // Simulate a cache serving the OLD version (e.g. a different edge):
  // poison the browser cache with version 1.
  browser_->Put("t/1", Doc(R"({"x":1})").ToJson(), /*etag=*/1,
                100 * kSecond);
  ReadResult r = client_->Read("t", "1");
  // The regression is detected and revalidated away.
  EXPECT_TRUE(r.outcome.revalidated);
  EXPECT_EQ(r.version, 2u);
  EXPECT_EQ(r.doc.Find("x")->as_int(), 2);
}

TEST_F(ClientTest, StrongConsistencyAlwaysRevalidates) {
  ClientOptions copts;
  copts.consistency = ConsistencyLevel::kStrong;
  MakeStack(copts);
  ASSERT_TRUE(db_.Insert("t", "1", Doc(R"({"x":1})")).ok());
  for (int i = 0; i < 3; ++i) {
    ReadResult r = client_->Read("t", "1");
    EXPECT_TRUE(r.outcome.revalidated);
    EXPECT_EQ(r.outcome.served_by, webcache::ServedBy::kOrigin);
  }
  EXPECT_EQ(client_->stats().revalidations, 3u);
}

TEST_F(ClientTest, StrongConsistencySeesLatestAlways) {
  ClientOptions copts;
  copts.consistency = ConsistencyLevel::kStrong;
  MakeStack(copts);
  ASSERT_TRUE(db_.Insert("t", "1", Doc(R"({"x":1})")).ok());
  (void)client_->Read("t", "1");
  auto other = OtherClient();
  db::Update u;
  u.Set("x", db::Value(2));
  ASSERT_TRUE(other->Update("t", "1", u).ok());
  EXPECT_EQ(client_->Read("t", "1").doc.Find("x")->as_int(), 2);
}

TEST_F(ClientTest, CausalModeRevalidatesAfterFreshRead) {
  ClientOptions copts;
  copts.consistency = ConsistencyLevel::kCausal;
  copts.ebf_refresh_interval = 1000 * kSecond;
  MakeStack(copts);
  ASSERT_TRUE(db_.Insert("t", "1", Doc(R"({"x":1})")).ok());
  ASSERT_TRUE(db_.Insert("t", "2", Doc(R"({"y":1})")).ok());
  // First read misses → origin → data newer than the EBF observed.
  ReadResult r1 = client_->Read("t", "1");
  EXPECT_EQ(r1.outcome.served_by, webcache::ServedBy::kOrigin);
  // Subsequent reads must revalidate until the EBF is refreshed.
  ReadResult r2 = client_->Read("t", "2");
  EXPECT_TRUE(r2.outcome.revalidated);
  client_->RefreshEbf();
  // After refresh, cached reads are allowed again.
  ReadResult r3 = client_->Read("t", "1");
  EXPECT_FALSE(r3.outcome.revalidated);
}

TEST_F(ClientTest, RevalidateAtCdnServesFromCdn) {
  ClientOptions copts;
  copts.revalidate_at_cdn = true;
  copts.ebf_refresh_interval = 100 * kSecond;
  MakeStack(copts);
  ASSERT_TRUE(db_.Insert("t", "1", Doc(R"({"x":1})")).ok());
  (void)client_->Read("t", "1");  // warm CDN + browser
  auto other = OtherClient();
  clock_.Advance(1 * kSecond);
  db::Update u;
  u.Set("x", db::Value(2));
  ASSERT_TRUE(other->Update("t", "1", u).ok());  // purges CDN synchronously
  // Re-warm the CDN with the fresh version via the other client.
  (void)other->Read("t", "1");
  client_->RefreshEbf();
  ReadResult r = client_->Read("t", "1");
  EXPECT_TRUE(r.outcome.revalidated);
  EXPECT_EQ(r.outcome.served_by, webcache::ServedBy::kInvalidationCache);
  EXPECT_EQ(r.doc.Find("x")->as_int(), 2);
}

TEST_F(ClientTest, IdListQueryAssemblesFromRecords) {
  core::ServerOptions sopts;
  sopts.representation = core::RepresentationPolicy::kAlwaysIdList;
  MakeStack(ClientOptions(), sopts);
  ASSERT_TRUE(db_.Insert("t", "1", Doc(R"({"g":1,"x":"a"})")).ok());
  ASSERT_TRUE(db_.Insert("t", "2", Doc(R"({"g":1,"x":"b"})")).ok());
  QueryResult qr = client_->ExecuteQuery(Q("t", R"({"g":1})"));
  ASSERT_TRUE(qr.status.ok());
  EXPECT_EQ(qr.representation, ttl::ResultRepresentation::kIdList);
  ASSERT_EQ(qr.docs.size(), 2u);
  EXPECT_EQ(qr.ids, (std::vector<std::string>{"t/1", "t/2"}));
  // Latency includes the query plus the parallel record fetches.
  EXPECT_GT(qr.outcome.latency_ms, 145.0);
}

TEST_F(ClientTest, EbfAgeAndAutoRefresh) {
  ClientOptions copts;
  copts.ebf_refresh_interval = 2 * kSecond;
  MakeStack(copts);
  ASSERT_TRUE(db_.Insert("t", "1", Doc(R"({"x":1})")).ok());
  EXPECT_EQ(client_->EbfAge(), 0);
  clock_.Advance(3 * kSecond);
  EXPECT_EQ(client_->EbfAge(), 3 * kSecond);
  ReadResult r = client_->Read("t", "1");
  EXPECT_TRUE(r.outcome.ebf_refreshed);
  EXPECT_EQ(client_->EbfAge(), 0);
  EXPECT_EQ(client_->stats().ebf_refreshes, 1u);
}

TEST_F(ClientTest, StatsAccumulate) {
  MakeStack();
  ASSERT_TRUE(db_.Insert("t", "1", Doc(R"({"x":1})")).ok());
  (void)client_->Read("t", "1");
  (void)client_->Read("t", "1");
  (void)client_->ExecuteQuery(Q("t", R"({"x":1})"));
  ASSERT_TRUE(client_->Insert("t", "2", Doc("{}")).ok());
  const ClientStats s = client_->stats();
  EXPECT_EQ(s.reads, 2u);
  EXPECT_EQ(s.queries, 1u);
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.client_cache_hits, 1u);
  EXPECT_GE(s.origin_fetches, 2u);
}

TEST_F(ClientTest, NoEbfModeSkipsStaleChecks) {
  ClientOptions copts;
  copts.use_ebf = false;
  MakeStack(copts);
  ASSERT_TRUE(db_.Insert("t", "1", Doc(R"({"x":1})")).ok());
  (void)client_->Read("t", "1");
  ReadResult r = client_->Read("t", "1");
  EXPECT_FALSE(r.outcome.revalidated);
  EXPECT_EQ(r.outcome.served_by, webcache::ServedBy::kClientCache);
}

}  // namespace
}  // namespace quaestor::client

namespace quaestor::client {
namespace {

db::Value Doc2(const char* json) {
  auto v = db::Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

// Regression: a session's own-write cache entry must be covered by the
// EBF. The write response is cacheable (the writer keeps it for
// read-your-writes), so the server must track an issued TTL for it —
// otherwise a subsequent foreign write cannot flag the key and the
// writer's session violates ∆-atomicity for up to own_write_ttl.
TEST(OwnWriteCoverageTest, ForeignWriteFlagsOwnWriteCacheEntry) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  core::QuaestorServer server(&clock, &db);
  webcache::ExpirationCache cache_a(&clock);
  webcache::ExpirationCache cache_b(&clock);
  ClientOptions copts;
  copts.ebf_refresh_interval = 2 * kMicrosPerSecond;
  QuaestorClient alice(&clock, &server, &cache_a, nullptr, copts);
  QuaestorClient bob(&clock, &server, &cache_b, nullptr, copts);
  alice.Connect();
  bob.Connect();

  // Alice writes and keeps her own copy (never read through the server).
  ASSERT_TRUE(alice.Insert("t", "x", Doc2(R"({"v":1})")).ok());
  clock.Advance(1 * kMicrosPerSecond);

  // Bob overwrites.
  db::Update u;
  u.Set("v", db::Value(2));
  ASSERT_TRUE(bob.Update("t", "x", u).ok());

  // The EBF must flag the key: Alice's own-write copy is out there.
  EXPECT_TRUE(server.ebf().IsStale("t/x"));

  // After ∆, Alice's read must revalidate and see v2.
  clock.Advance(2 * kMicrosPerSecond);
  auto r = alice.Read("t", "x");
  EXPECT_EQ(r.doc.Find("v")->as_int(), 2);
}

// ---------------------------------------------------------------------------
// Retry backoff and budget edge cases
// ---------------------------------------------------------------------------

// Regression: the exponential backoff was clamped only AFTER narrowing
// the double-domain product to Micros. With a max_backoff near the
// int64 ceiling the cast itself overflowed (undefined behaviour — in
// practice INT64_MIN), charging a huge *negative* wait to the response
// latency instead of capping the backoff.
TEST_F(ClientTest, BackoffClampSurvivesHugeMaxBackoff) {
  ClientOptions copts;
  copts.retry.enabled = true;
  copts.retry.max_attempts = 40;
  copts.retry.initial_backoff = kSecond;
  copts.retry.multiplier = 8.0;
  copts.retry.max_backoff = std::numeric_limits<Micros>::max();
  MakeStack(copts);
  ASSERT_TRUE(db_.Insert("t", "x", Doc(R"({"v":1})")).ok());
  server_->SetUnavailable(true);
  ReadResult r = client_->Read("t", "x");
  EXPECT_TRUE(r.status.IsUnavailable());
  EXPECT_EQ(client_->stats().retries, 39u);
  // Every backoff wait must come out non-negative and capped.
  EXPECT_GE(r.outcome.latency_ms, 0.0);
}

// Regression: with a fractional retry budget (0 < budget < 1) the
// refill-on-success was capped at the budget itself, so the bucket could
// never accumulate one whole token and retries stayed suppressed forever
// — even against a healthy backend.
TEST_F(ClientTest, FractionalBudgetRefillsToWholeToken) {
  ClientOptions copts;
  copts.retry.enabled = true;
  copts.retry.max_attempts = 2;
  copts.retry.retry_budget = 0.5;
  copts.retry.budget_refill_per_success = 0.25;
  MakeStack(copts);
  ASSERT_TRUE(db_.Insert("t", "x", Doc(R"({"v":1})")).ok());

  // Half a token cannot fund a retry.
  server_->SetUnavailable(true);
  (void)client_->Read("t", "x");
  EXPECT_EQ(client_->stats().retries, 0u);
  EXPECT_EQ(client_->stats().retries_suppressed, 1u);

  // A healthy stretch refills to one whole token (bucket capacity is
  // max(budget, 1.0), not the fractional budget).
  server_->SetUnavailable(false);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client_->Read("t", "x").status.ok());
  }
  EXPECT_DOUBLE_EQ(client_->retry_tokens(), 1.0);

  // ...which funds exactly one retry on the next outage. (Drop the
  // warmed copies so the read actually reaches the origin.)
  browser_->Remove("t/x");
  cdn_->Purge("t/x");
  server_->SetUnavailable(true);
  (void)client_->Read("t", "x");
  EXPECT_EQ(client_->stats().retries, 1u);
}

// Pinning: every successful fetch refills the retry budget — including a
// 304 revalidation and a flagged stale-serve under overload. Both are ok
// outcomes and must share the refill site with plain 200s.
TEST_F(ClientTest, RevalidationAndStaleServeSuccessesRefillBudget) {
  ClientOptions copts;
  copts.consistency = ConsistencyLevel::kStrong;
  copts.retry.enabled = true;
  copts.retry.max_attempts = 2;
  copts.retry.retry_budget = 4.0;
  copts.retry.budget_refill_per_success = 0.5;
  MakeStack(copts);
  ASSERT_TRUE(db_.Insert("t", "x", Doc(R"({"v":1})")).ok());

  // Burn one token so the refills below are observable under the cap.
  server_->SetUnavailable(true);
  (void)client_->Read("t", "x");
  EXPECT_DOUBLE_EQ(client_->retry_tokens(), 3.0);
  server_->SetUnavailable(false);

  // A plain 200 refills...
  ASSERT_TRUE(client_->Read("t", "x").status.ok());
  EXPECT_DOUBLE_EQ(client_->retry_tokens(), 3.5);

  // ...and so does a strong-consistency 304 revalidation.
  const uint64_t revalidated = server_->stats().not_modified;
  ASSERT_TRUE(client_->Read("t", "x").status.ok());
  EXPECT_GT(server_->stats().not_modified, revalidated);
  EXPECT_DOUBLE_EQ(client_->retry_tokens(), 4.0);

  // Stale-serve leg: a second session with an impossible deadline and a
  // sub-token budget. The CDN is purged, so its retained copy can only
  // answer via the stale-serve path — each flagged success must refill
  // until the bucket holds one whole token.
  ClientOptions sopts;
  sopts.retry.enabled = true;
  sopts.retry.max_attempts = 2;
  sopts.retry.retry_budget = 0.5;
  sopts.retry.budget_refill_per_success = 0.25;
  sopts.request_deadline = 1 * kMicrosPerMilli;
  sopts.stale_serve.enabled = true;
  sopts.stale_serve.max_age = 3600 * kSecond;
  auto other = OtherClient(sopts);
  cdn_->Purge("t/x");
  for (int i = 0; i < 3; ++i) {
    ReadResult sr = other->Read("t", "x");
    ASSERT_TRUE(sr.status.ok());
    EXPECT_TRUE(sr.outcome.served_stale_on_shed);
  }
  EXPECT_DOUBLE_EQ(other->retry_tokens(), 1.0);
}

}  // namespace
}  // namespace quaestor::client
