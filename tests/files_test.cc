#include <gtest/gtest.h>

#include <memory>

#include "client/client.h"
#include "common/clock.h"
#include "core/files.h"
#include "core/server.h"
#include "db/database.h"
#include "webcache/web_cache.h"

namespace quaestor::core {
namespace {

class FilesTest : public ::testing::Test {
 protected:
  FilesTest() : clock_(0), db_(&clock_) {
    server_ = std::make_unique<QuaestorServer>(&clock_, &db_);
    files_ = std::make_unique<FileService>(server_.get());
    cdn_ = std::make_unique<webcache::InvalidationCache>(&clock_);
    server_->AddPurgeTarget(
        [this](const std::string& key) { cdn_->Purge(key); });
  }

  SimulatedClock clock_;
  db::Database db_;
  std::unique_ptr<QuaestorServer> server_;
  std::unique_ptr<FileService> files_;
  std::unique_ptr<webcache::InvalidationCache> cdn_;
};

TEST_F(FilesTest, UploadAndGet) {
  auto up = files_->Upload("css/site.css", "body{margin:0}", "text/css");
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up->version, 1u);
  auto got = files_->Get("css/site.css");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->content, "body{margin:0}");
  EXPECT_EQ(got->content_type, "text/css");
}

TEST_F(FilesTest, ReuploadBumpsVersion) {
  ASSERT_TRUE(files_->Upload("a.txt", "v1").ok());
  auto second = files_->Upload("a.txt", "v2");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->version, 2u);
  EXPECT_EQ(files_->Get("a.txt")->content, "v2");
}

TEST_F(FilesTest, EmptyPathRejected) {
  EXPECT_TRUE(files_->Upload("", "x").status().IsInvalidArgument());
}

TEST_F(FilesTest, DeleteRemoves) {
  ASSERT_TRUE(files_->Upload("a.txt", "v1").ok());
  ASSERT_TRUE(files_->Delete("a.txt").ok());
  EXPECT_TRUE(files_->Get("a.txt").status().IsNotFound());
  EXPECT_TRUE(files_->Delete("a.txt").IsNotFound());
}

TEST_F(FilesTest, FilesAreCacheableResources) {
  ASSERT_TRUE(files_->Upload("img/logo.png", "PNGDATA", "image/png").ok());
  webcache::HttpRequest req;
  req.key = FileService::CacheKeyFor("img/logo.png");
  auto resp = server_->Fetch(req);
  ASSERT_TRUE(resp.ok);
  EXPECT_GT(resp.ttl, 0);  // files get estimated TTLs like records
  EXPECT_EQ(resp.etag, 1u);
}

TEST_F(FilesTest, OverwriteFlagsStaleAndPurges) {
  ASSERT_TRUE(files_->Upload("a.txt", "v1").ok());
  const std::string key = FileService::CacheKeyFor("a.txt");
  // A client caches the file.
  webcache::HttpRequest req;
  req.key = key;
  ASSERT_TRUE(server_->Fetch(req).ok);
  clock_.Advance(kMicrosPerSecond);
  // Overwrite: the EBF flags the key; the CDN gets purged.
  const uint64_t purges_before = cdn_->PurgeCount();
  ASSERT_TRUE(files_->Upload("a.txt", "v2").ok());
  EXPECT_TRUE(server_->ebf().IsStale(key));
  EXPECT_GT(cdn_->PurgeCount(), purges_before);
}

TEST_F(FilesTest, ClientReadsFilesThroughCaches) {
  ASSERT_TRUE(files_->Upload("app.js", "console.log(1)", "text/javascript")
                  .ok());
  webcache::ExpirationCache browser(&clock_);
  client::QuaestorClient c(&clock_, server_.get(), &browser, cdn_.get());
  c.Connect();
  auto r1 = c.Read(FileService::kTable, "app.js");
  ASSERT_TRUE(r1.status.ok());
  EXPECT_EQ(r1.outcome.served_by, webcache::ServedBy::kOrigin);
  EXPECT_EQ(r1.doc.Find("content")->as_string(), "console.log(1)");
  auto r2 = c.Read(FileService::kTable, "app.js");
  EXPECT_EQ(r2.outcome.served_by, webcache::ServedBy::kClientCache);
}

TEST_F(FilesTest, StaleFileRevalidatedAfterEbfRefresh) {
  ASSERT_TRUE(files_->Upload("a.txt", "v1").ok());
  webcache::ExpirationCache browser(&clock_);
  client::QuaestorClient c(&clock_, server_.get(), &browser, cdn_.get());
  c.Connect();
  (void)c.Read(FileService::kTable, "a.txt");  // cached v1
  clock_.Advance(kMicrosPerSecond / 2);
  ASSERT_TRUE(files_->Upload("a.txt", "v2").ok());
  c.RefreshEbf();
  auto r = c.Read(FileService::kTable, "a.txt");
  EXPECT_TRUE(r.outcome.revalidated);
  EXPECT_EQ(r.doc.Find("content")->as_string(), "v2");
}

TEST_F(FilesTest, MalformedFileDocumentReportsCorruption) {
  ASSERT_TRUE(server_
                  ->Insert(FileService::kTable, "broken",
                           db::Value::FromJson(R"({"oops":1})").value())
                  .ok());
  EXPECT_EQ(files_->Get("broken").status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace quaestor::core
