#include <gtest/gtest.h>

#include <string>

#include "common/clock.h"
#include "webcache/hierarchy.h"
#include "webcache/web_cache.h"

namespace quaestor::webcache {
namespace {

constexpr Micros kSecond = kMicrosPerSecond;

// ---------------------------------------------------------------------------
// ExpirationCache
// ---------------------------------------------------------------------------

TEST(ExpirationCacheTest, ServesFreshEntries) {
  SimulatedClock clock(0);
  ExpirationCache cache(&clock);
  cache.Put("k", "body", /*etag=*/1, /*ttl=*/10 * kSecond);
  auto hit = cache.Get("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->body, "body");
  EXPECT_EQ(hit->etag, 1u);
}

TEST(ExpirationCacheTest, ExpiresAfterTtl) {
  SimulatedClock clock(0);
  ExpirationCache cache(&clock);
  cache.Put("k", "body", 1, 10 * kSecond);
  clock.Advance(10 * kSecond);
  EXPECT_FALSE(cache.Get("k").has_value());
  // The entry is still retrievable for conditional revalidation.
  EXPECT_TRUE(cache.GetEvenIfExpired("k").has_value());
}

TEST(ExpirationCacheTest, ZeroTtlNotStored) {
  SimulatedClock clock(0);
  ExpirationCache cache(&clock);
  cache.Put("k", "body", 1, 0);
  EXPECT_EQ(cache.Size(), 0u);
  EXPECT_FALSE(cache.Get("k").has_value());
}

TEST(ExpirationCacheTest, PutRefreshesEntry) {
  SimulatedClock clock(0);
  ExpirationCache cache(&clock);
  cache.Put("k", "v1", 1, 5 * kSecond);
  clock.Advance(4 * kSecond);
  cache.Put("k", "v2", 2, 5 * kSecond);
  clock.Advance(4 * kSecond);  // old TTL would have expired
  auto hit = cache.Get("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->body, "v2");
}

TEST(ExpirationCacheTest, StatsDistinguishMissKinds) {
  SimulatedClock clock(0);
  ExpirationCache cache(&clock);
  (void)cache.Get("absent");
  cache.Put("k", "v", 1, 1 * kSecond);
  clock.Advance(2 * kSecond);
  (void)cache.Get("k");
  (void)cache.Get("k");
  cache.Put("k2", "v", 1, 10 * kSecond);
  (void)cache.Get("k2");
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.expired_misses, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.insertions, 2u);
  EXPECT_NEAR(s.HitRate(), 0.25, 1e-9);
}

TEST(ExpirationCacheTest, LruEvictsLeastRecentlyUsed) {
  SimulatedClock clock(0);
  ExpirationCache cache(&clock, /*max_entries=*/2);
  cache.Put("a", "1", 1, 100 * kSecond);
  cache.Put("b", "2", 1, 100 * kSecond);
  (void)cache.Get("a");              // a is now most recent
  cache.Put("c", "3", 1, 100 * kSecond);  // evicts b
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ExpirationCacheTest, ExpiredEntryReclaimedPastStaleRetention) {
  SimulatedClock clock(0);
  ExpirationCache cache(&clock);
  cache.set_stale_retention(30 * kSecond);
  cache.Put("k", "v", 1, 10 * kSecond);
  clock.Advance(20 * kSecond);
  // Expired but inside the retention window: kept for revalidation.
  EXPECT_FALSE(cache.Get("k").has_value());
  EXPECT_TRUE(cache.GetEvenIfExpired("k").has_value());
  EXPECT_EQ(cache.Size(), 1u);
  // Past expire_at + retention the expired-miss itself reclaims it.
  clock.Advance(25 * kSecond);
  EXPECT_FALSE(cache.Get("k").has_value());
  EXPECT_EQ(cache.Size(), 0u);
  EXPECT_FALSE(cache.GetEvenIfExpired("k").has_value());
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.expired_evictions, 1u);
  EXPECT_EQ(s.expired_misses, 2u);
  EXPECT_EQ(s.evictions, 0u);  // reclaimed, not capacity-evicted
}

TEST(ExpirationCacheTest, PutSweepReclaimsDeadEntries) {
  SimulatedClock clock(0);
  // One shard so every Put's sweep walks the same ring.
  ExpirationCache cache(&clock, /*max_entries=*/0, /*num_shards=*/1);
  cache.set_stale_retention(1 * kSecond);
  for (int i = 0; i < 8; ++i) {
    cache.Put("dead" + std::to_string(i), "v", 1, 1 * kSecond);
  }
  clock.Advance(10 * kSecond);  // all 8 now past TTL + retention
  // Each Put sweeps a bounded number of ring slots; enough Puts reclaim
  // every dead body without any Get touching them.
  for (int i = 0; i < 8; ++i) {
    cache.Put("live" + std::to_string(i), "v", 1, 100 * kSecond);
  }
  EXPECT_GT(cache.stats().expired_evictions, 0u);
  EXPECT_LT(cache.Size(), 16u);
}

TEST(ExpirationCacheTest, ShardedCacheKeepsSemantics) {
  SimulatedClock clock(0);
  ExpirationCache cache(&clock, /*max_entries=*/0, /*num_shards=*/8);
  EXPECT_EQ(cache.num_shards(), 8u);
  for (int i = 0; i < 500; ++i) {
    cache.Put("k" + std::to_string(i), "v" + std::to_string(i),
              static_cast<uint64_t>(i + 1), 100 * kSecond);
  }
  EXPECT_EQ(cache.Size(), 500u);
  EXPECT_EQ(cache.Keys().size(), 500u);
  for (int i = 0; i < 500; ++i) {
    auto hit = cache.Get("k" + std::to_string(i));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->body, "v" + std::to_string(i));
  }
  EXPECT_TRUE(cache.Remove("k7"));
  EXPECT_FALSE(cache.Get("k7").has_value());
  EXPECT_EQ(cache.stats().hits, 500u);
  cache.Clear();
  EXPECT_EQ(cache.Size(), 0u);
}

TEST(ExpirationCacheTest, TinyCacheCollapsesToOneShard) {
  SimulatedClock clock(0);
  // Bounded caches clamp shards so replacement stays globally exact for
  // small capacities (the browser-cache tests rely on this).
  ExpirationCache tiny(&clock, /*max_entries=*/2, /*num_shards=*/16);
  EXPECT_EQ(tiny.num_shards(), 1u);
  ExpirationCache big(&clock, /*max_entries=*/4096, /*num_shards=*/16);
  EXPECT_EQ(big.num_shards(), 16u);
}

TEST(ExpirationCacheTest, RemoveDropsEntry) {
  SimulatedClock clock(0);
  ExpirationCache cache(&clock);
  cache.Put("k", "v", 1, 10 * kSecond);
  EXPECT_TRUE(cache.Remove("k"));
  EXPECT_FALSE(cache.Remove("k"));
  EXPECT_FALSE(cache.Get("k").has_value());
  EXPECT_FALSE(cache.GetEvenIfExpired("k").has_value());
}

TEST(InvalidationCacheTest, PurgeExpiresButRetainsEntry) {
  SimulatedClock clock(0);
  InvalidationCache cdn(&clock);
  cdn.Put("k", "v", 1, 100 * kSecond);
  EXPECT_TRUE(cdn.Purge("k"));
  // The purged copy is no longer servable as fresh...
  EXPECT_FALSE(cdn.Get("k").has_value());
  // ...but stays resident for revalidation and stale-shed fallback.
  EXPECT_TRUE(cdn.GetEvenIfExpired("k").has_value());
  EXPECT_FALSE(cdn.Purge("k"));  // already expired: nothing fresh to drop
  EXPECT_EQ(cdn.PurgeCount(), 2u);
}

// ---------------------------------------------------------------------------
// Hierarchy
// ---------------------------------------------------------------------------

/// A scripted origin that counts fetches and serves a fixed body/version.
class FakeOrigin : public Origin {
 public:
  HttpResponse Fetch(const HttpRequest& request) override {
    fetches++;
    last_request = request;
    HttpResponse resp;
    if (shed_mode) {
      resp.shed = true;
      return resp;
    }
    if (!exists) return resp;
    resp.ok = true;
    resp.etag = version;
    resp.ttl = ttl;
    if (request.has_if_none_match && request.if_none_match == version) {
      resp.not_modified = true;
      not_modified_count++;
    } else {
      resp.body = body;
    }
    return resp;
  }

  int fetches = 0;
  int not_modified_count = 0;
  bool exists = true;
  bool shed_mode = false;  // origin answers 503-shed (overload)
  std::string body = "origin-body";
  uint64_t version = 1;
  Micros ttl = 60 * kSecond;
  HttpRequest last_request;
};

class HierarchyTest : public ::testing::Test {
 protected:
  HierarchyTest()
      : clock_(0),
        client_cache_(&clock_),
        cdn_(&clock_),
        hierarchy_(&clock_, &client_cache_, nullptr, &cdn_, &origin_) {}

  SimulatedClock clock_;
  ExpirationCache client_cache_;
  InvalidationCache cdn_;
  FakeOrigin origin_;
  CacheHierarchy hierarchy_;
};

TEST_F(HierarchyTest, MissGoesToOriginAndFillsCaches) {
  FetchOutcome fo = hierarchy_.Fetch("k", FetchMode::kNormal);
  ASSERT_TRUE(fo.ok);
  EXPECT_EQ(fo.served_by, ServedBy::kOrigin);
  EXPECT_EQ(fo.body, "origin-body");
  EXPECT_DOUBLE_EQ(fo.latency_ms, hierarchy_.latency_model().origin_ms);
  EXPECT_EQ(fo.remaining_ttl, 60 * kSecond);
  EXPECT_EQ(client_cache_.Size(), 1u);
  EXPECT_EQ(cdn_.Size(), 1u);
}

TEST_F(HierarchyTest, SecondFetchHitsClientCache) {
  (void)hierarchy_.Fetch("k", FetchMode::kNormal);
  FetchOutcome fo = hierarchy_.Fetch("k", FetchMode::kNormal);
  EXPECT_EQ(fo.served_by, ServedBy::kClientCache);
  EXPECT_DOUBLE_EQ(fo.latency_ms, 0.0);
  EXPECT_EQ(origin_.fetches, 1);
}

TEST_F(HierarchyTest, CdnHitAfterClientExpiry) {
  origin_.ttl = 10 * kSecond;
  (void)hierarchy_.Fetch("k", FetchMode::kNormal);
  // Drop only the client copy; the CDN still holds it.
  client_cache_.Remove("k");
  FetchOutcome fo = hierarchy_.Fetch("k", FetchMode::kNormal);
  EXPECT_EQ(fo.served_by, ServedBy::kInvalidationCache);
  EXPECT_DOUBLE_EQ(fo.latency_ms, hierarchy_.latency_model().cdn_ms);
  EXPECT_EQ(origin_.fetches, 1);
  // The CDN hit re-fills the client cache with the remaining TTL.
  EXPECT_TRUE(client_cache_.Get("k").has_value());
}

TEST_F(HierarchyTest, CdnHitRemainingTtlShrinks) {
  origin_.ttl = 10 * kSecond;
  (void)hierarchy_.Fetch("k", FetchMode::kNormal);
  client_cache_.Remove("k");
  clock_.Advance(4 * kSecond);
  FetchOutcome fo = hierarchy_.Fetch("k", FetchMode::kNormal);
  EXPECT_EQ(fo.served_by, ServedBy::kInvalidationCache);
  EXPECT_EQ(fo.remaining_ttl, 6 * kSecond);
  // Client copy expires when the CDN copy would have.
  clock_.Advance(6 * kSecond);
  EXPECT_FALSE(client_cache_.Get("k").has_value());
}

TEST_F(HierarchyTest, RevalidateBypassesCaches) {
  (void)hierarchy_.Fetch("k", FetchMode::kNormal);
  origin_.body = "new-body";
  origin_.version = 2;
  FetchOutcome fo = hierarchy_.Fetch("k", FetchMode::kRevalidate);
  EXPECT_EQ(fo.served_by, ServedBy::kOrigin);
  EXPECT_EQ(fo.body, "new-body");
  EXPECT_EQ(fo.etag, 2u);
  // Caches refreshed with the new version.
  EXPECT_EQ(client_cache_.Get("k")->etag, 2u);
  EXPECT_EQ(cdn_.Get("k")->etag, 2u);
}

TEST_F(HierarchyTest, RevalidateUses304WhenUnchanged) {
  (void)hierarchy_.Fetch("k", FetchMode::kNormal);
  FetchOutcome fo = hierarchy_.Fetch("k", FetchMode::kRevalidate);
  ASSERT_TRUE(fo.ok);
  EXPECT_EQ(origin_.not_modified_count, 1);
  EXPECT_EQ(fo.body, "origin-body");  // body restored from stored copy
  EXPECT_TRUE(origin_.last_request.has_if_none_match);
}

TEST_F(HierarchyTest, RevalidateAtCdnServedByCdn) {
  (void)hierarchy_.Fetch("k", FetchMode::kNormal);
  FetchOutcome fo = hierarchy_.Fetch("k", FetchMode::kRevalidateAtCdn);
  EXPECT_EQ(fo.served_by, ServedBy::kInvalidationCache);
  EXPECT_EQ(origin_.fetches, 1);
}

TEST_F(HierarchyTest, RevalidateAtCdnFallsThroughAfterPurge) {
  (void)hierarchy_.Fetch("k", FetchMode::kNormal);
  cdn_.Purge("k");
  FetchOutcome fo = hierarchy_.Fetch("k", FetchMode::kRevalidateAtCdn);
  EXPECT_EQ(fo.served_by, ServedBy::kOrigin);
  EXPECT_EQ(origin_.fetches, 2);
}

TEST_F(HierarchyTest, NotFoundPropagates) {
  origin_.exists = false;
  FetchOutcome fo = hierarchy_.Fetch("k", FetchMode::kNormal);
  EXPECT_FALSE(fo.ok);
  EXPECT_EQ(fo.served_by, ServedBy::kOrigin);
  EXPECT_EQ(client_cache_.Size(), 0u);
}

TEST_F(HierarchyTest, UncacheableResponsesNotStored) {
  origin_.ttl = 0;
  FetchOutcome fo = hierarchy_.Fetch("k", FetchMode::kNormal);
  ASSERT_TRUE(fo.ok);
  EXPECT_EQ(client_cache_.Size(), 0u);
  EXPECT_EQ(cdn_.Size(), 0u);
  // Every fetch reaches the origin.
  (void)hierarchy_.Fetch("k", FetchMode::kNormal);
  EXPECT_EQ(origin_.fetches, 2);
}

// ---------------------------------------------------------------------------
// Stale-serving load shedding
// ---------------------------------------------------------------------------

TEST_F(HierarchyTest, ShedOriginFailsWithoutStaleServePolicy) {
  origin_.ttl = 1 * kSecond;
  (void)hierarchy_.Fetch("k", FetchMode::kNormal);
  clock_.Advance(5 * kSecond);
  origin_.shed_mode = true;
  FetchOutcome fo = hierarchy_.Fetch("k", FetchMode::kNormal);
  EXPECT_FALSE(fo.ok);
  EXPECT_TRUE(fo.shed);
  EXPECT_FALSE(fo.served_stale_on_shed);
}

TEST_F(HierarchyTest, ShedOriginServesFlaggedStaleCopy) {
  clock_.Advance(1);  // keep stored_at off the t=0 sentinel for exact ages
  origin_.ttl = 1 * kSecond;
  (void)hierarchy_.Fetch("k", FetchMode::kNormal);
  clock_.Advance(5 * kSecond);
  origin_.shed_mode = true;
  StaleServePolicy policy;
  policy.enabled = true;
  policy.ttl_cap = 1 * kSecond;
  policy.max_age = 60 * kSecond;
  hierarchy_.set_stale_serve(policy);

  FetchOutcome fo = hierarchy_.Fetch("k", FetchMode::kNormal);
  ASSERT_TRUE(fo.ok);
  EXPECT_TRUE(fo.shed);  // the origin did shed; the serve is the fallback
  EXPECT_TRUE(fo.served_stale_on_shed);
  EXPECT_EQ(fo.body, "origin-body");
  EXPECT_EQ(fo.stale_entry_age, 5 * kSecond);
  EXPECT_EQ(fo.remaining_ttl, policy.ttl_cap);
  EXPECT_EQ(origin_.fetches, 2);

  // The re-published copy absorbs the crowd: the next fetch is a cache
  // hit — still flagged, with the true (not reset) age.
  FetchOutcome hit = hierarchy_.Fetch("k", FetchMode::kNormal);
  ASSERT_TRUE(hit.ok);
  EXPECT_EQ(hit.served_by, ServedBy::kClientCache);
  EXPECT_TRUE(hit.served_stale_on_shed);
  EXPECT_EQ(hit.stale_entry_age, 5 * kSecond);
  EXPECT_EQ(origin_.fetches, 2);
}

TEST_F(HierarchyTest, RepeatedSheddingCannotLaunderStaleness) {
  clock_.Advance(1);  // keep stored_at off the t=0 sentinel for exact ages
  origin_.ttl = 1 * kSecond;
  (void)hierarchy_.Fetch("k", FetchMode::kNormal);
  StaleServePolicy policy;
  policy.enabled = true;
  policy.ttl_cap = 1 * kSecond;
  policy.max_age = 60 * kSecond;
  hierarchy_.set_stale_serve(policy);
  origin_.shed_mode = true;

  clock_.Advance(5 * kSecond);
  FetchOutcome first = hierarchy_.Fetch("k", FetchMode::kNormal);
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(first.stale_entry_age, 5 * kSecond);

  // Past the capped TTL the copy expires again and the origin is still
  // shedding: the second stale serve must age from the ORIGINAL fetch.
  clock_.Advance(2 * kSecond);
  FetchOutcome second = hierarchy_.Fetch("k", FetchMode::kNormal);
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.served_stale_on_shed);
  EXPECT_EQ(second.stale_entry_age, 7 * kSecond);
}

TEST_F(HierarchyTest, StaleServeRefusesCopiesPastMaxAge) {
  origin_.ttl = 1 * kSecond;
  (void)hierarchy_.Fetch("k", FetchMode::kNormal);
  StaleServePolicy policy;
  policy.enabled = true;
  policy.ttl_cap = 1 * kSecond;
  policy.max_age = 60 * kSecond;
  hierarchy_.set_stale_serve(policy);
  origin_.shed_mode = true;

  clock_.Advance(120 * kSecond);  // older than max_age, inside retention
  FetchOutcome fo = hierarchy_.Fetch("k", FetchMode::kNormal);
  EXPECT_FALSE(fo.ok);
  EXPECT_TRUE(fo.shed);
  EXPECT_FALSE(fo.served_stale_on_shed);
}

TEST_F(HierarchyTest, DoomedDeadlineSkipsOriginAndServesStale) {
  origin_.ttl = 1 * kSecond;
  (void)hierarchy_.Fetch("k", FetchMode::kNormal);
  StaleServePolicy policy;
  policy.enabled = true;
  policy.ttl_cap = 1 * kSecond;
  policy.max_age = 60 * kSecond;
  hierarchy_.set_stale_serve(policy);

  clock_.Advance(5 * kSecond);
  // Remaining budget shorter than the origin round trip: the trip is
  // skipped entirely and the retained copy answers.
  RequestContext ctx =
      RequestContext::WithTimeout(clock_.NowMicros(), MillisToMicros(1.0));
  FetchOutcome fo = hierarchy_.Fetch("k", FetchMode::kNormal, ctx);
  ASSERT_TRUE(fo.ok);
  EXPECT_TRUE(fo.deadline_exceeded);
  EXPECT_TRUE(fo.served_stale_on_shed);
  EXPECT_EQ(origin_.fetches, 1);  // no second origin visit
}

// Regression: an entry stored at simulated t=0 recorded fetched_at == 0,
// which is also the "unset" sentinel. When the copy later propagated
// from the CDN into the client cache, the receiving tier backfilled
// fetched_at with ITS store time — laundering the copy's true age — and
// a later shed served a body far older than max_age as if it were young.
TEST_F(HierarchyTest, TimeZeroFetchCannotLaunderAgeAcrossTiers) {
  origin_.ttl = 100 * kSecond;
  (void)hierarchy_.Fetch("k", FetchMode::kNormal);  // t = 0: warms both tiers
  client_cache_.Remove("k");  // only the CDN holds the t=0 copy

  // t = 90 s: a CDN hit propagates the copy back into the client cache,
  // carrying the original fetch time with it.
  clock_.Advance(90 * kSecond);
  FetchOutcome hit = hierarchy_.Fetch("k", FetchMode::kNormal);
  ASSERT_TRUE(hit.ok);
  ASSERT_EQ(hit.served_by, ServedBy::kInvalidationCache);

  StaleServePolicy policy;
  policy.enabled = true;
  policy.ttl_cap = 1 * kSecond;
  policy.max_age = 60 * kSecond;
  hierarchy_.set_stale_serve(policy);

  // t = 95 s: the server invalidates; t = 120 s: every copy is expired
  // and the origin sheds. The body is 120 s old — past max_age — so the
  // stale serve must refuse it, not age it from the 90 s propagation.
  clock_.Advance(5 * kSecond);
  ASSERT_TRUE(cdn_.Purge("k"));
  clock_.Advance(25 * kSecond);
  origin_.shed_mode = true;
  FetchOutcome fo = hierarchy_.Fetch("k", FetchMode::kNormal);
  EXPECT_FALSE(fo.ok);
  EXPECT_TRUE(fo.shed);
  EXPECT_FALSE(fo.served_stale_on_shed);
}

TEST_F(HierarchyTest, PurgeThenStaleServeAgesFromOriginalFetch) {
  clock_.Advance(1);  // keep stored_at off the t=0 sentinel for exact ages
  origin_.ttl = 100 * kSecond;
  (void)hierarchy_.Fetch("k", FetchMode::kNormal);
  client_cache_.Remove("k");  // only the CDN retains a copy
  StaleServePolicy policy;
  policy.enabled = true;
  policy.ttl_cap = 1 * kSecond;
  policy.max_age = 60 * kSecond;
  hierarchy_.set_stale_serve(policy);

  // A purge expires the fresh CDN copy in place; when the origin then
  // sheds, the retained body may still absorb the crowd — flagged, and
  // aged from its original fetch, not from the purge.
  clock_.Advance(5 * kSecond);
  ASSERT_TRUE(cdn_.Purge("k"));
  origin_.shed_mode = true;
  FetchOutcome fo = hierarchy_.Fetch("k", FetchMode::kNormal);
  ASSERT_TRUE(fo.ok);
  EXPECT_TRUE(fo.shed);
  EXPECT_TRUE(fo.served_stale_on_shed);
  EXPECT_EQ(fo.body, "origin-body");
  EXPECT_EQ(fo.stale_entry_age, 5 * kSecond);
  EXPECT_EQ(origin_.fetches, 2);
}

TEST(HierarchyBaselinesTest, UncachedAlwaysHitsOrigin) {
  SimulatedClock clock(0);
  FakeOrigin origin;
  CacheHierarchy bare(&clock, nullptr, nullptr, nullptr, &origin);
  for (int i = 0; i < 3; ++i) {
    FetchOutcome fo = bare.Fetch("k", FetchMode::kNormal);
    EXPECT_EQ(fo.served_by, ServedBy::kOrigin);
  }
  EXPECT_EQ(origin.fetches, 3);
}

TEST(HierarchyBaselinesTest, CdnOnlyServesFromCdn) {
  SimulatedClock clock(0);
  FakeOrigin origin;
  InvalidationCache cdn(&clock);
  CacheHierarchy h(&clock, nullptr, nullptr, &cdn, &origin);
  (void)h.Fetch("k", FetchMode::kNormal);
  FetchOutcome fo = h.Fetch("k", FetchMode::kNormal);
  EXPECT_EQ(fo.served_by, ServedBy::kInvalidationCache);
  EXPECT_EQ(origin.fetches, 1);
}

TEST(HierarchyProxyTest, ProxyHopServesAndFillsClient) {
  SimulatedClock clock(0);
  FakeOrigin origin;
  ExpirationCache client_cache(&clock);
  ExpirationCache proxy(&clock);
  InvalidationCache cdn(&clock);
  CacheHierarchy h(&clock, &client_cache, &proxy, &cdn, &origin);
  (void)h.Fetch("k", FetchMode::kNormal);
  EXPECT_EQ(proxy.Size(), 1u);
  client_cache.Remove("k");
  FetchOutcome fo = h.Fetch("k", FetchMode::kNormal);
  EXPECT_EQ(fo.served_by, ServedBy::kExpirationCache);
  EXPECT_EQ(origin.fetches, 1);
  EXPECT_TRUE(client_cache.Get("k").has_value());
}

}  // namespace
}  // namespace quaestor::webcache
