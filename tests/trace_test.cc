// Tracer unit tests plus end-to-end span coverage: a simulated cache-miss
// Fetch must yield a complete, causally ordered span tree through
// client → cache tiers → server → EBF/TTL/InvaliDB, and same-seed runs
// must export byte-identical Chrome-trace JSON.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "client/client.h"
#include "common/clock.h"
#include "core/server.h"
#include "db/database.h"
#include "obs/trace.h"
#include "sim/simulation.h"
#include "webcache/web_cache.h"

namespace quaestor::obs {
namespace {

// ---------------------------------------------------------------------------
// Tracer unit tests
// ---------------------------------------------------------------------------

TEST(TracerTest, ImplicitParentFollowsCallNesting) {
  SimulatedClock clock(0);
  Tracer tracer(&clock);
  const uint64_t root = tracer.StartSpan("root");
  EXPECT_EQ(tracer.CurrentSpan(), root);
  clock.Advance(10);
  const uint64_t child = tracer.StartSpan("child");
  clock.Advance(10);
  tracer.EndSpan(child);
  EXPECT_EQ(tracer.CurrentSpan(), root);
  const uint64_t sibling = tracer.StartSpan("sibling");
  tracer.EndSpan(sibling);
  tracer.EndSpan(root);
  EXPECT_EQ(tracer.CurrentSpan(), 0u);

  const std::vector<Span> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].name, "child");
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[2].parent, root);
  EXPECT_EQ(spans[1].start, 10);
  EXPECT_EQ(spans[1].end, 20);
  for (const Span& s : spans) EXPECT_TRUE(s.finished());
}

TEST(TracerTest, DeterministicIdsAreSequential) {
  SimulatedClock clock(0);
  Tracer tracer(&clock);
  EXPECT_EQ(tracer.StartSpan("a"), 1u);
  EXPECT_EQ(tracer.StartSpan("b"), 2u);
  EXPECT_EQ(tracer.StartSpan("c"), 3u);
}

TEST(TracerTest, ExplicitParentDoesNotJoinImplicitStack) {
  SimulatedClock clock(0);
  Tracer tracer(&clock);
  const uint64_t root = tracer.StartSpan("root");
  const uint64_t detached = tracer.StartSpanWithParent("detached", root);
  // The detached span must not become the implicit parent.
  EXPECT_EQ(tracer.CurrentSpan(), root);
  const uint64_t child = tracer.StartSpan("child");
  const std::vector<Span> spans = tracer.Spans();
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[2].parent, root);
  tracer.EndSpan(child);
  tracer.EndSpan(detached);
  tracer.EndSpan(root);
}

TEST(TracerTest, AnnotationsAttachToOpenSpan) {
  SimulatedClock clock(0);
  Tracer tracer(&clock);
  const uint64_t id = tracer.StartSpan("op");
  tracer.Annotate(id, "key", "t:1");
  tracer.EndSpan(id);
  tracer.Annotate(id, "late", "ignored");  // closed span: no-op
  const std::vector<Span> spans = tracer.Spans();
  ASSERT_EQ(spans[0].annotations.size(), 1u);
  EXPECT_EQ(spans[0].annotations[0].first, "key");
  EXPECT_EQ(spans[0].annotations[0].second, "t:1");
}

TEST(TracerTest, DisabledAndNullTracersAreNoOps) {
  SimulatedClock clock(0);
  TracerOptions opts;
  opts.enabled = false;
  Tracer tracer(&clock, opts);
  EXPECT_EQ(tracer.StartSpan("x"), 0u);
  EXPECT_EQ(tracer.SpanCount(), 0u);
  {
    ScopedSpan s1(&tracer, "scoped");
    ScopedSpan s2(nullptr, "null");
    s2.Annotate("k", "v");
    EXPECT_EQ(s1.id(), 0u);
    EXPECT_EQ(s2.id(), 0u);
  }
  EXPECT_EQ(tracer.SpanCount(), 0u);
}

TEST(TracerTest, MaxSpansBoundsBufferAndCountsDrops) {
  SimulatedClock clock(0);
  TracerOptions opts;
  opts.max_spans = 2;
  Tracer tracer(&clock, opts);
  const uint64_t a = tracer.StartSpan("a");
  const uint64_t b = tracer.StartSpan("b");
  const uint64_t c = tracer.StartSpan("c");  // dropped
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_EQ(c, 0u);
  EXPECT_EQ(tracer.SpanCount(), 2u);
  EXPECT_EQ(tracer.DroppedSpans(), 1u);
}

TEST(TracerTest, ChromeTraceExportsFinishedSpansOnly) {
  SimulatedClock clock(100);
  Tracer tracer(&clock);
  const uint64_t done = tracer.StartSpan("done");
  clock.Advance(50);
  tracer.EndSpan(done);
  tracer.StartSpan("still_open");

  const db::Value trace = tracer.ToChromeTrace();
  ASSERT_TRUE(trace.is_object());
  const db::Object& root = trace.as_object();
  EXPECT_EQ(root.at("displayTimeUnit").as_string(), "ms");
  const db::Array& events = root.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 1u);
  const db::Object& ev = events[0].as_object();
  EXPECT_EQ(ev.at("ph").as_string(), "X");
  EXPECT_EQ(ev.at("name").as_string(), "done");
  EXPECT_EQ(ev.at("ts").as_int(), 100);
  EXPECT_EQ(ev.at("dur").as_int(), 50);
  EXPECT_EQ(ev.at("pid").as_int(), 1);
  EXPECT_EQ(ev.at("args").as_object().at("span_id").as_int(), 1);
}

// ---------------------------------------------------------------------------
// End-to-end span tree through the full stack
// ---------------------------------------------------------------------------

db::Value Doc(const char* json) {
  auto v = db::Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

const Span* FindByName(const std::vector<Span>& spans,
                       const std::string& name) {
  for (const Span& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const Span* FindById(const std::vector<Span>& spans, uint64_t id) {
  for (const Span& s : spans) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

/// True if `ancestor` is on `span`'s parent chain (or is the span itself).
bool HasAncestor(const std::vector<Span>& spans, const Span& span,
                 uint64_t ancestor) {
  const Span* cur = &span;
  while (cur != nullptr) {
    if (cur->id == ancestor) return true;
    cur = cur->parent == 0 ? nullptr : FindById(spans, cur->parent);
  }
  return false;
}

class TraceStackTest : public ::testing::Test {
 protected:
  TraceStackTest() : clock_(0), db_(&clock_), tracer_(&clock_) {
    server_ = std::make_unique<core::QuaestorServer>(&clock_, &db_);
    cdn_ = std::make_unique<webcache::InvalidationCache>(&clock_);
    server_->AddPurgeTarget(
        [this](const std::string& key) { cdn_->Purge(key); });
    browser_ = std::make_unique<webcache::ExpirationCache>(&clock_);
    client_ = std::make_unique<client::QuaestorClient>(
        &clock_, server_.get(), browser_.get(), cdn_.get());
    client_->Connect();
    server_->set_tracer(&tracer_);
    client_->set_tracer(&tracer_);
  }

  SimulatedClock clock_;
  db::Database db_;
  Tracer tracer_;
  std::unique_ptr<core::QuaestorServer> server_;
  std::unique_ptr<webcache::InvalidationCache> cdn_;
  std::unique_ptr<webcache::ExpirationCache> browser_;
  std::unique_ptr<client::QuaestorClient> client_;
};

TEST_F(TraceStackTest, CacheMissQueryYieldsCompleteSpanTree) {
  ASSERT_TRUE(db_.Insert("t", "1", Doc(R"({"group":1})")).ok());
  auto q = db::Query::ParseJson("t", R"({"group":1})");
  ASSERT_TRUE(q.ok());
  client::QueryResult qr = client_->ExecuteQuery(q.value());
  ASSERT_TRUE(qr.status.ok());
  EXPECT_EQ(qr.outcome.served_by, webcache::ServedBy::kOrigin);

  const std::vector<Span> spans = tracer_.Spans();
  const Span* root = FindByName(spans, "client.query");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent, 0u);

  // Every stage of the miss path must be present and sit under the
  // client span: cache hierarchy → origin → server → TTL/EBF/InvaliDB.
  for (const char* name :
       {"cache.fetch", "cache.client", "cache.cdn", "cache.origin",
        "server.fetch", "server.query", "db.execute", "ttl.estimate",
        "invalidb.register", "ebf.report_read"}) {
    const Span* s = FindByName(spans, name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_TRUE(HasAncestor(spans, *s, root->id)) << name;
    EXPECT_TRUE(s->finished()) << name;
  }

  // Causal nesting: each stage is contained in its parent stage.
  const Span* origin = FindByName(spans, "cache.origin");
  const Span* server_fetch = FindByName(spans, "server.fetch");
  const Span* server_query = FindByName(spans, "server.query");
  const Span* db_exec = FindByName(spans, "db.execute");
  EXPECT_TRUE(HasAncestor(spans, *server_fetch, origin->id));
  EXPECT_EQ(server_query->parent, server_fetch->id);
  EXPECT_EQ(db_exec->parent, server_query->id);
  EXPECT_TRUE(HasAncestor(spans, *FindByName(spans, "cache.origin"),
                          FindByName(spans, "cache.fetch")->id));
}

TEST_F(TraceStackTest, WriteYieldsMatchAndNotifySpans) {
  // Register a live query first so the write has something to match.
  ASSERT_TRUE(db_.Insert("t", "1", Doc(R"({"group":1})")).ok());
  auto q = db::Query::ParseJson("t", R"({"group":1})");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(client_->ExecuteQuery(q.value()).status.ok());
  tracer_.Clear();

  db::Update update;
  update.Set("group", db::Value(2));
  ASSERT_TRUE(client_->Update("t", "1", update).ok());
  const std::vector<Span> spans = tracer_.Spans();
  const Span* root = FindByName(spans, "client.write");
  ASSERT_NE(root, nullptr);
  for (const char* name :
       {"server.write", "invalidb.match", "invalidb.notify"}) {
    const Span* s = FindByName(spans, name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_TRUE(HasAncestor(spans, *s, root->id)) << name;
  }
}

// ---------------------------------------------------------------------------
// Simulation tracing: deterministic export
// ---------------------------------------------------------------------------

workload::WorkloadOptions TinyWorkload() {
  workload::WorkloadOptions w;
  w.num_tables = 2;
  w.docs_per_table = 100;
  w.queries_per_table = 5;
  w.docs_per_query = 5;
  return w;
}

sim::SimOptions TracedSim() {
  sim::SimOptions s;
  s.num_client_instances = 2;
  s.connections_per_instance = 3;
  s.duration = SecondsToMicros(5.0);
  s.warmup = SecondsToMicros(1.0);
  s.seed = 7;
  s.trace = true;
  return s;
}

TEST(SimulationTraceTest, SameSeedRunsExportIdenticalTraceJson) {
  sim::Simulation a(TinyWorkload(), TracedSim());
  sim::Simulation b(TinyWorkload(), TracedSim());
  a.Run();
  b.Run();
  ASSERT_NE(a.tracer(), nullptr);
  ASSERT_NE(b.tracer(), nullptr);
  EXPECT_GT(a.tracer()->SpanCount(), 0u);
  const std::string ja = a.tracer()->ToChromeTraceJson();
  const std::string jb = b.tracer()->ToChromeTraceJson();
  EXPECT_EQ(ja, jb);  // byte-identical
}

TEST(SimulationTraceTest, SimulatedFetchSpansFormTrees) {
  sim::Simulation sim(TinyWorkload(), TracedSim());
  sim.Run();
  ASSERT_NE(sim.tracer(), nullptr);
  const std::vector<Span> spans = sim.tracer()->Spans();
  ASSERT_FALSE(spans.empty());

  // Every parent reference resolves, and client.* spans are roots.
  size_t roots = 0;
  for (const Span& s : spans) {
    if (s.parent != 0) {
      EXPECT_NE(FindById(spans, s.parent), nullptr) << s.name;
    } else {
      ++roots;
    }
  }
  EXPECT_GT(roots, 0u);

  // At least one query miss traversed the whole stack.
  const Span* q = FindByName(spans, "server.query");
  ASSERT_NE(q, nullptr);
  EXPECT_NE(FindByName(spans, "client.query"), nullptr);
  EXPECT_NE(FindByName(spans, "db.execute"), nullptr);
}

TEST(SimulationTraceTest, TracingOffByDefault) {
  sim::SimOptions s = TracedSim();
  s.trace = false;
  sim::Simulation sim(TinyWorkload(), s);
  sim.Run();
  EXPECT_EQ(sim.tracer(), nullptr);
}

}  // namespace
}  // namespace quaestor::obs
