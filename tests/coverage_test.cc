// Supplementary coverage: edge cases across modules that the per-module
// suites do not exercise.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "client/client.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "core/query_result.h"
#include "core/server.h"
#include "db/database.h"
#include "sim/simulation.h"
#include "webcache/hierarchy.h"
#include "webcache/web_cache.h"

namespace quaestor {
namespace {

db::Value Doc(const char* json) {
  auto v = db::Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

// ---------------------------------------------------------------------------
// Value & JSON corner cases
// ---------------------------------------------------------------------------

TEST(ValueEdgeTest, NanAndInfinitySerializeAsNull) {
  EXPECT_EQ(db::Value(std::nan("")).ToJson(), "null");
  EXPECT_EQ(db::Value(std::numeric_limits<double>::infinity()).ToJson(),
            "null");
}

TEST(ValueEdgeTest, DeepNestingRoundTrips) {
  std::string json = "1";
  for (int i = 0; i < 60; ++i) json = "[" + json + "]";
  auto v = db::Value::FromJson(json);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToJson(), json);
}

TEST(ValueEdgeTest, LargeIntegerBoundaries) {
  auto max = db::Value::FromJson("9223372036854775807");
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(max->as_int(), std::numeric_limits<int64_t>::max());
  // Overflowing integers degrade to double instead of failing.
  auto over = db::Value::FromJson("92233720368547758080");
  ASSERT_TRUE(over.ok());
  EXPECT_TRUE(over->is_double());
}

TEST(ValueEdgeTest, EmptyStringKeysAndValues) {
  auto v = db::Value::FromJson(R"({"":""})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_object().count(""), 1u);
  EXPECT_EQ(v->ToJson(), R"({"":""})");
}

// ---------------------------------------------------------------------------
// Histogram properties
// ---------------------------------------------------------------------------

TEST(HistogramEdgeTest, QuantilesMonotone) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    h.Record(rng.NextExponential(0.01));
  }
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, prev) << q;
    prev = v;
  }
  EXPECT_LE(h.Quantile(1.0), h.max());
  EXPECT_GE(h.Quantile(0.0), h.min());
}

TEST(HistogramEdgeTest, HugeValuesClampToLastBucket) {
  Histogram h;
  h.Record(1e30);
  h.Record(1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e30);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.Quantile(0.99), 1.0);
}

// ---------------------------------------------------------------------------
// Hierarchy with every level present
// ---------------------------------------------------------------------------

class CountingOrigin : public webcache::Origin {
 public:
  webcache::HttpResponse Fetch(const webcache::HttpRequest& req) override {
    fetches++;
    webcache::HttpResponse resp;
    resp.ok = true;
    resp.etag = version;
    resp.ttl = ttl;
    if (req.has_if_none_match && req.if_none_match == version) {
      resp.not_modified = true;
    } else {
      resp.body = "body-v" + std::to_string(version);
    }
    return resp;
  }
  int fetches = 0;
  uint64_t version = 1;
  Micros ttl = 60 * kMicrosPerSecond;
};

TEST(FullHierarchyTest, RevalidateRefreshesEveryLevel) {
  SimulatedClock clock(0);
  CountingOrigin origin;
  webcache::ExpirationCache browser(&clock);
  webcache::ExpirationCache proxy(&clock);
  webcache::InvalidationCache cdn(&clock);
  webcache::CacheHierarchy h(&clock, &browser, &proxy, &cdn, &origin);

  (void)h.Fetch("k", webcache::FetchMode::kNormal);
  origin.version = 2;
  auto fo = h.Fetch("k", webcache::FetchMode::kRevalidate);
  EXPECT_EQ(fo.etag, 2u);
  EXPECT_EQ(browser.Get("k")->etag, 2u);
  EXPECT_EQ(proxy.Get("k")->etag, 2u);
  EXPECT_EQ(cdn.Get("k")->etag, 2u);
}

TEST(FullHierarchyTest, ProxySurvivesCdnPurge) {
  // The crux of §2: expiration-based proxies cannot be purged — after a
  // CDN purge the proxy still serves the old copy until its TTL passes.
  SimulatedClock clock(0);
  CountingOrigin origin;
  webcache::ExpirationCache proxy(&clock);
  webcache::InvalidationCache cdn(&clock);
  webcache::CacheHierarchy h(&clock, nullptr, &proxy, &cdn, &origin);

  (void)h.Fetch("k", webcache::FetchMode::kNormal);
  origin.version = 2;
  cdn.Purge("k");
  auto fo = h.Fetch("k", webcache::FetchMode::kNormal);
  EXPECT_EQ(fo.served_by, webcache::ServedBy::kExpirationCache);
  EXPECT_EQ(fo.etag, 1u);  // stale — exactly why the EBF exists
}

// ---------------------------------------------------------------------------
// Query response etag edge cases
// ---------------------------------------------------------------------------

TEST(QueryResponseEdgeTest, EmptyResultsHaveStableNonZeroEtag) {
  core::QueryResponse a;
  core::QueryResponse b;
  EXPECT_NE(a.ComputeEtag(), 0u);
  EXPECT_EQ(a.ComputeEtag(), b.ComputeEtag());
  b.ids.push_back("t/x");
  EXPECT_NE(a.ComputeEtag(), b.ComputeEtag());
}

TEST(QueryResponseEdgeTest, OrderMattersForEtag) {
  core::QueryResponse a;
  a.representation = ttl::ResultRepresentation::kIdList;
  a.ids = {"t/1", "t/2"};
  core::QueryResponse b = a;
  b.ids = {"t/2", "t/1"};
  EXPECT_NE(a.ComputeEtag(), b.ComputeEtag());
}

// ---------------------------------------------------------------------------
// Simulation: purge latency governs CDN staleness
// ---------------------------------------------------------------------------

TEST(SimPurgeLatencyTest, SlowerPurgesMeanMoreCdnStaleness) {
  workload::WorkloadOptions w;
  w.num_tables = 2;
  w.docs_per_table = 100;
  w.queries_per_table = 10;
  w.update_weight = 0.15;
  w.read_weight = 0.425;
  w.query_weight = 0.425;

  auto run = [&](Micros purge_latency) {
    sim::SimOptions s;
    s.arch = sim::CacheArchitecture::CdnOnly();
    s.num_client_instances = 2;
    s.connections_per_instance = 5;
    s.duration = SecondsToMicros(15.0);
    s.warmup = SecondsToMicros(3.0);
    s.cdn_purge_latency = purge_latency;
    s.seed = 11;
    sim::Simulation simulation(w, s);
    sim::SimResults r = simulation.Run();
    return r.queries.StaleRate() + r.reads.StaleRate();
  };

  const double fast = run(MillisToMicros(5.0));
  const double slow = run(SecondsToMicros(2.0));
  EXPECT_LT(fast, slow);
}

// ---------------------------------------------------------------------------
// Server: write_response_ttl contract
// ---------------------------------------------------------------------------

TEST(WriteResponseTtlTest, WriteTracksTtlEvenWithoutReads) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  core::QuaestorServer server(&clock, &db);
  ASSERT_TRUE(server.Insert("t", "x", Doc(R"({"v":1})")).ok());
  // The write response's implied TTL is tracked.
  EXPECT_GE(server.ebf().Partition("t")->TrackedCount(), 1u);
  // ... so an immediate second write flags the key.
  clock.Advance(kMicrosPerSecond);
  db::Update u;
  u.Set("v", db::Value(2));
  ASSERT_TRUE(server.Update("t", "x", u).ok());
  EXPECT_TRUE(server.ebf().IsStale("t/x"));
  // And after the write-response TTL passes, the key drains out.
  clock.Advance(server.options().write_response_ttl + kMicrosPerSecond);
  server.ebf().Partition("t")->Maintain();
  EXPECT_FALSE(server.ebf().IsStale("t/x"));
}

TEST(WriteResponseTtlTest, DeleteDoesNotTrackATtl) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  core::QuaestorServer server(&clock, &db);
  ASSERT_TRUE(server.Insert("t", "x", Doc(R"({"v":1})")).ok());
  clock.Advance(server.options().write_response_ttl + kMicrosPerSecond);
  server.ebf().Partition("t")->Maintain();
  ASSERT_TRUE(server.Delete("t", "x").ok());
  // Deletes return no cacheable body; nothing new to track.
  clock.Advance(kMicrosPerSecond);
  EXPECT_FALSE(server.ebf().IsStale("t/x"));
}

}  // namespace
}  // namespace quaestor
