#include <gtest/gtest.h>

#include <memory>

#include "client/client.h"
#include "common/clock.h"
#include "core/auth.h"
#include "core/server.h"
#include "db/database.h"
#include "db/schema.h"
#include "webcache/web_cache.h"

namespace quaestor {
namespace {

db::Value Doc(const char* json) {
  auto v = db::Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

// ---------------------------------------------------------------------------
// TableSchema
// ---------------------------------------------------------------------------

TEST(SchemaTest, RequiredFieldEnforced) {
  db::TableSchema s;
  s.Field("title", db::FieldType::kString, /*required=*/true);
  EXPECT_TRUE(s.Validate(Doc(R"({"title":"x"})")).ok());
  EXPECT_FALSE(s.Validate(Doc(R"({"other":1})")).ok());
}

TEST(SchemaTest, TypeChecking) {
  db::TableSchema s;
  s.Field("n", db::FieldType::kInt)
      .Field("f", db::FieldType::kDouble)
      .Field("num", db::FieldType::kNumber)
      .Field("b", db::FieldType::kBool)
      .Field("s", db::FieldType::kString)
      .Field("a", db::FieldType::kArray)
      .Field("o", db::FieldType::kObject)
      .Field("w", db::FieldType::kAny);
  EXPECT_TRUE(s.Validate(Doc(
                   R"({"n":1,"f":1.5,"num":2,"b":true,"s":"x","a":[],
                       "o":{},"w":null})"))
                  .ok());
  EXPECT_FALSE(s.Validate(Doc(R"({"n":1.5})")).ok());   // double for int
  EXPECT_FALSE(s.Validate(Doc(R"({"f":1})")).ok());     // int for double
  EXPECT_TRUE(s.Validate(Doc(R"({"num":1.5})")).ok());  // number: both
  EXPECT_FALSE(s.Validate(Doc(R"({"b":"true"})")).ok());
  EXPECT_FALSE(s.Validate(Doc(R"({"a":{}})")).ok());
}

TEST(SchemaTest, OptionalFieldsMayBeAbsent) {
  db::TableSchema s;
  s.Field("opt", db::FieldType::kString, /*required=*/false);
  EXPECT_TRUE(s.Validate(Doc("{}")).ok());
}

TEST(SchemaTest, NestedPaths) {
  db::TableSchema s;
  s.Field("author.name", db::FieldType::kString, /*required=*/true);
  EXPECT_TRUE(s.Validate(Doc(R"({"author":{"name":"ada"}})")).ok());
  EXPECT_FALSE(s.Validate(Doc(R"({"author":{}})")).ok());
  EXPECT_FALSE(s.Validate(Doc(R"({"author":{"name":42}})")).ok());
}

TEST(SchemaTest, UnknownFieldsPolicy) {
  db::TableSchema s;
  s.Field("known", db::FieldType::kAny).Field("nested.x", db::FieldType::kAny);
  EXPECT_TRUE(s.Validate(Doc(R"({"known":1,"extra":2})")).ok());
  s.DisallowUnknownFields();
  EXPECT_FALSE(s.Validate(Doc(R"({"known":1,"extra":2})")).ok());
  EXPECT_TRUE(s.Validate(Doc(R"({"known":1,"nested":{"x":1}})")).ok());
}

TEST(SchemaTest, RegistryRoutesPerTable) {
  db::SchemaRegistry reg;
  db::TableSchema s;
  s.Field("x", db::FieldType::kInt, true);
  reg.SetSchema("strict", std::move(s));
  EXPECT_TRUE(reg.HasSchema("strict"));
  EXPECT_FALSE(reg.HasSchema("lax"));
  EXPECT_FALSE(reg.Validate("strict", Doc("{}")).ok());
  EXPECT_TRUE(reg.Validate("lax", Doc("{}")).ok());
  reg.RemoveSchema("strict");
  EXPECT_TRUE(reg.Validate("strict", Doc("{}")).ok());
}

// ---------------------------------------------------------------------------
// AccessController
// ---------------------------------------------------------------------------

TEST(AuthTest, DefaultIsPublic) {
  core::AccessController ac;
  EXPECT_TRUE(ac.CheckRead(core::Credentials::Anonymous(), "t").ok());
  EXPECT_TRUE(ac.CheckWrite(core::Credentials::Anonymous(), "t").ok());
  EXPECT_TRUE(ac.ReadIsPublic("t"));
}

TEST(AuthTest, ProtectWrites) {
  core::AccessController ac;
  ac.ProtectWrites("posts", "editor");
  EXPECT_TRUE(ac.CheckRead(core::Credentials::Anonymous(), "posts").ok());
  EXPECT_FALSE(ac.CheckWrite(core::Credentials::Anonymous(), "posts").ok());
  EXPECT_FALSE(
      ac.CheckWrite(core::Credentials::User({"viewer"}), "posts").ok());
  EXPECT_TRUE(
      ac.CheckWrite(core::Credentials::User({"editor"}), "posts").ok());
  EXPECT_TRUE(ac.ReadIsPublic("posts"));
}

TEST(AuthTest, ProtectTable) {
  core::AccessController ac;
  ac.ProtectTable("secrets", "admin");
  EXPECT_FALSE(ac.CheckRead(core::Credentials::Anonymous(), "secrets").ok());
  EXPECT_TRUE(
      ac.CheckRead(core::Credentials::User({"admin"}), "secrets").ok());
  EXPECT_FALSE(ac.ReadIsPublic("secrets"));
}

TEST(AuthTest, AuthenticatedLevel) {
  core::AccessController ac;
  core::AccessController::TableRule rule;
  rule.write = core::AccessLevel::kAuthenticated;
  ac.SetRule("t", rule);
  EXPECT_FALSE(ac.CheckWrite(core::Credentials::Anonymous(), "t").ok());
  EXPECT_TRUE(ac.CheckWrite(core::Credentials::User(), "t").ok());
}

TEST(AuthTest, RootBypassesEverything) {
  core::AccessController ac;
  core::AccessController::TableRule rule;
  rule.read = core::AccessLevel::kNobody;
  rule.write = core::AccessLevel::kNobody;
  ac.SetRule("t", rule);
  EXPECT_TRUE(ac.CheckRead(core::Credentials::Root(), "t").ok());
  EXPECT_TRUE(ac.CheckWrite(core::Credentials::Root(), "t").ok());
  EXPECT_FALSE(ac.CheckWrite(core::Credentials::User({"any"}), "t").ok());
}

TEST(AuthTest, SessionResolution) {
  core::AccessController ac;
  ac.RegisterSession("tok-1", core::Credentials::User({"editor"}));
  EXPECT_TRUE(ac.Resolve("tok-1").HasRole("editor"));
  EXPECT_FALSE(ac.Resolve("").authenticated);
  EXPECT_FALSE(ac.Resolve("unknown").authenticated);
  ac.RevokeSession("tok-1");
  EXPECT_FALSE(ac.Resolve("tok-1").authenticated);
}

// ---------------------------------------------------------------------------
// Server integration
// ---------------------------------------------------------------------------

class SecureServerTest : public ::testing::Test {
 protected:
  SecureServerTest() : clock_(0), db_(&clock_) {
    server_ = std::make_unique<core::QuaestorServer>(&clock_, &db_);
  }

  webcache::HttpResponse Get(const std::string& key,
                             const std::string& token = "") {
    webcache::HttpRequest req;
    req.key = key;
    req.auth_token = token;
    return server_->Fetch(req);
  }

  SimulatedClock clock_;
  db::Database db_;
  std::unique_ptr<core::QuaestorServer> server_;
};

TEST_F(SecureServerTest, SchemaEnforcedOnInsert) {
  db::TableSchema s;
  s.Field("title", db::FieldType::kString, /*required=*/true);
  server_->schemas().SetSchema("posts", std::move(s));
  EXPECT_TRUE(server_->Insert("posts", "bad", Doc(R"({"x":1})"))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(server_->Insert("posts", "good", Doc(R"({"title":"t"})")).ok());
}

TEST_F(SecureServerTest, SchemaEnforcedOnUpdatePostImage) {
  db::TableSchema s;
  s.Field("title", db::FieldType::kString, /*required=*/true);
  server_->schemas().SetSchema("posts", std::move(s));
  ASSERT_TRUE(server_->Insert("posts", "p", Doc(R"({"title":"t"})")).ok());
  // Removing the required field is rejected; the record is unchanged.
  db::Update drop;
  drop.Unset("title");
  EXPECT_FALSE(server_->Update("posts", "p", drop).ok());
  EXPECT_EQ(db_.Get("posts", "p")->version, 1u);
  // A type-preserving update passes.
  db::Update retitle;
  retitle.Set("title", db::Value("new"));
  EXPECT_TRUE(server_->Update("posts", "p", retitle).ok());
}

TEST_F(SecureServerTest, WriteAuthorizationEnforced) {
  server_->auth().ProtectWrites("posts", "editor");
  server_->auth().RegisterSession("editor-tok",
                                  core::Credentials::User({"editor"}));
  const auto anon = core::Credentials::Anonymous();
  const auto editor = server_->auth().Resolve("editor-tok");
  EXPECT_FALSE(server_->Insert(anon, "posts", "p", Doc("{}")).ok());
  EXPECT_TRUE(server_->Insert(editor, "posts", "p", Doc("{}")).ok());
  db::Update u;
  u.Set("x", db::Value(1));
  EXPECT_FALSE(server_->Update(anon, "posts", "p", u).ok());
  EXPECT_FALSE(server_->Delete(anon, "posts", "p").ok());
  EXPECT_TRUE(server_->Delete(editor, "posts", "p").ok());
}

TEST_F(SecureServerTest, ProtectedReadsDeniedAndUncacheable) {
  server_->auth().ProtectTable("secrets", "admin");
  server_->auth().RegisterSession("admin-tok",
                                  core::Credentials::User({"admin"}));
  ASSERT_TRUE(server_->Insert("secrets", "s1", Doc(R"({"k":"v"})")).ok());

  // Anonymous: denied.
  EXPECT_FALSE(Get("secrets/s1").ok);
  // Admin: served, but with ttl 0 — shared caches must never store it.
  auto resp = Get("secrets/s1", "admin-tok");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.ttl, 0);
}

TEST_F(SecureServerTest, ProtectedQueriesUncacheable) {
  server_->auth().ProtectTable("secrets", "admin");
  server_->auth().RegisterSession("admin-tok",
                                  core::Credentials::User({"admin"}));
  ASSERT_TRUE(server_->Insert("secrets", "s1", Doc(R"({"g":1})")).ok());
  db::Query q = db::Query::ParseJson("secrets", R"({"g":1})").value();
  server_->RegisterQueryShape(q);

  EXPECT_FALSE(Get(q.NormalizedKey()).ok);  // anonymous: denied
  auto resp = Get(q.NormalizedKey(), "admin-tok");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.ttl, 0);
  // Never registered for invalidation: it is never cached.
  EXPECT_FALSE(server_->invalidb().IsRegistered(q.NormalizedKey()));
}

TEST_F(SecureServerTest, ClientSessionCarriesToken) {
  server_->auth().ProtectWrites("posts", "editor");
  server_->auth().RegisterSession("editor-tok",
                                  core::Credentials::User({"editor"}));

  webcache::ExpirationCache cache(&clock_);
  client::ClientOptions anon_opts;
  client::QuaestorClient anon(&clock_, server_.get(), &cache, nullptr,
                              anon_opts);
  anon.Connect();
  EXPECT_FALSE(anon.Insert("posts", "p", Doc("{}")).ok());

  webcache::ExpirationCache cache2(&clock_);
  client::ClientOptions editor_opts;
  editor_opts.auth_token = "editor-tok";
  client::QuaestorClient editor(&clock_, server_.get(), &cache2, nullptr,
                                editor_opts);
  editor.Connect();
  EXPECT_TRUE(editor.Insert("posts", "p", Doc("{}")).ok());
}

TEST_F(SecureServerTest, ProtectedReadThroughClient) {
  server_->auth().ProtectTable("secrets", "admin");
  server_->auth().RegisterSession("admin-tok",
                                  core::Credentials::User({"admin"}));
  ASSERT_TRUE(server_->Insert("secrets", "s1", Doc(R"({"k":"v"})")).ok());

  webcache::ExpirationCache cache(&clock_);
  client::ClientOptions opts;
  opts.auth_token = "admin-tok";
  client::QuaestorClient admin(&clock_, server_.get(), &cache, nullptr, opts);
  admin.Connect();
  auto r = admin.Read("secrets", "s1");
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.doc.Find("k")->as_string(), "v");
  // ttl 0 → nothing entered the browser cache.
  EXPECT_EQ(cache.Size(), 0u);
}

}  // namespace
}  // namespace quaestor
