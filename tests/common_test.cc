#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/queue.h"
#include "common/request_context.h"
#include "common/result.h"
#include "common/status.h"

namespace quaestor {
namespace {

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Aborted("x"));
}

TEST(StatusTest, AllFactoriesProduceMatchingCode) {
  EXPECT_TRUE(Status::AlreadyExists().IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::ResourceExhausted().IsResourceExhausted());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_EQ(Status::TimedOut().code(), StatusCode::kTimedOut);
  EXPECT_EQ(Status::Corruption().code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotSupported().code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::Unavailable().code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Internal().code(), StatusCode::kInternal);
  EXPECT_EQ(Status::OutOfRange().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::DeadlineExceeded().code(),
            StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, DeadlineExceededIsDistinctFromTimedOut) {
  const Status deadline = Status::DeadlineExceeded("past deadline");
  EXPECT_TRUE(deadline.IsDeadlineExceeded());
  EXPECT_FALSE(deadline.IsTimedOut());
  EXPECT_EQ(deadline.ToString(), "DeadlineExceeded: past deadline");

  const Status timeout = Status::TimedOut("rpc timeout");
  EXPECT_TRUE(timeout.IsTimedOut());
  EXPECT_FALSE(timeout.IsDeadlineExceeded());
}

Status FailsThenPropagates(bool fail) {
  QUAESTOR_RETURN_IF_ERROR(fail ? Status::Aborted("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(FailsThenPropagates(false).ok());
  EXPECT_TRUE(FailsThenPropagates(true).IsAborted());
}

// ---------------------------------------------------------------------------
// RequestContext
// ---------------------------------------------------------------------------

TEST(RequestContextTest, DefaultHasNoDeadline) {
  RequestContext ctx;
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.Expired(1'000'000));
  EXPECT_EQ(ctx.Remaining(1'000'000), RequestContext::kNoDeadlineRemaining);
  EXPECT_EQ(ctx.priority, Priority::kNormal);
}

TEST(RequestContextTest, WithTimeoutSetsAbsoluteDeadline) {
  const RequestContext ctx =
      RequestContext::WithTimeout(/*now=*/500, /*timeout=*/1000,
                                  Priority::kHigh);
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_EQ(ctx.deadline, 1500);
  EXPECT_EQ(ctx.priority, Priority::kHigh);
}

TEST(RequestContextTest, RemainingCountsDownThenExpires) {
  RequestContext ctx;
  ctx.deadline = 2000;
  EXPECT_EQ(ctx.Remaining(500), 1500);
  EXPECT_FALSE(ctx.Expired(1999));
  EXPECT_TRUE(ctx.Expired(2000));
  EXPECT_TRUE(ctx.Expired(5000));
  EXPECT_EQ(ctx.Remaining(2000), 0);
  EXPECT_EQ(ctx.Remaining(9000), 0);
}

TEST(RequestContextTest, PriorityNames) {
  EXPECT_EQ(PriorityToString(Priority::kCritical), "critical");
  EXPECT_EQ(PriorityToString(Priority::kHigh), "high");
  EXPECT_EQ(PriorityToString(Priority::kNormal), "normal");
  EXPECT_EQ(PriorityToString(Priority::kLow), "low");
}

// ---------------------------------------------------------------------------
// Result
// ---------------------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r = 7;
  EXPECT_EQ(r.value_or(-1), 7);
}

// ---------------------------------------------------------------------------
// Clocks
// ---------------------------------------------------------------------------

TEST(ClockTest, SimulatedClockAdvances) {
  SimulatedClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.SetTime(1000);
  EXPECT_EQ(clock.NowMicros(), 1000);
}

TEST(ClockTest, SystemClockIsMonotonic) {
  SystemClock* clock = SystemClock::Default();
  const Micros a = clock->NowMicros();
  const Micros b = clock->NowMicros();
  EXPECT_LE(a, b);
}

TEST(ClockTest, UnitConversions) {
  EXPECT_EQ(SecondsToMicros(1.5), 1500000);
  EXPECT_EQ(MillisToMicros(2.5), 2500);
  EXPECT_DOUBLE_EQ(MicrosToSeconds(2000000), 2.0);
  EXPECT_DOUBLE_EQ(MicrosToMillis(1500), 1.5);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(h.min(), 42.0);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
  // Quantiles clamp to the observed range.
  EXPECT_GE(h.Quantile(0.5), 42.0 * 0.9);
  EXPECT_LE(h.Quantile(0.5), 42.0 * 1.1);
}

TEST(HistogramTest, QuantilesRoughlyCorrect) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  EXPECT_NEAR(h.Mean(), 500.5, 0.01);
  EXPECT_NEAR(h.Median(), 500.0, 50.0);    // log buckets: ~8% error bound
  EXPECT_NEAR(h.Quantile(0.99), 990.0, 90.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Record(1.0);
  a.Record(2.0);
  b.Record(10.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 13.0);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(1.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, ExtremeQuantilesReturnObservedBounds) {
  // Regression: Quantile(0) interpolated the first occupied bucket's
  // midpoint and Quantile(1) its last — both could fall outside
  // [min(), max()]. The extremes must be exactly the observed bounds.
  Histogram h;
  h.Record(7.0);
  h.Record(100.0);
  h.Record(2500.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 2500.0);
  // Out-of-range q clamps the same way.
  EXPECT_DOUBLE_EQ(h.Quantile(-0.5), 7.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.5), 2500.0);
}

TEST(HistogramTest, SingleObservationQuantilesAreExact) {
  Histogram h;
  h.Record(42.0);
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_GE(h.Quantile(q), h.min()) << "q=" << q;
    EXPECT_LE(h.Quantile(q), h.max()) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 42.0);
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram a;
  a.Record(3.0);
  a.Record(9.0);
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.sum(), 12.0);
  EXPECT_DOUBLE_EQ(a.min(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);

  // Merging INTO an empty histogram must not let the +inf min_ sentinel
  // or 0 max_ leak into the result.
  Histogram b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.min(), 3.0);
  EXPECT_DOUBLE_EQ(b.max(), 9.0);

  // Empty ∪ empty stays empty and keeps reporting min() == 0.
  Histogram c;
  Histogram d;
  c.Merge(d);
  EXPECT_EQ(c.count(), 0u);
  EXPECT_DOUBLE_EQ(c.min(), 0.0);
  EXPECT_DOUBLE_EQ(c.Quantile(1.0), 0.0);
}

TEST(HistogramTest, DiffSinceSubtractsEarlierSnapshot) {
  Histogram earlier;
  earlier.Record(1.0);
  earlier.Record(5.0);
  Histogram later = earlier;  // snapshot semantics: later extends earlier
  later.Record(100.0);
  later.Record(200.0);

  const Histogram delta = later.DiffSince(earlier);
  EXPECT_EQ(delta.count(), 2u);
  EXPECT_DOUBLE_EQ(delta.sum(), 300.0);
  EXPECT_NEAR(delta.Quantile(0.5), 100.0, 10.0);  // log buckets: ~8% error

  // Diffing a snapshot against itself yields a truly empty histogram.
  const Histogram zero = later.DiffSince(later);
  EXPECT_EQ(zero.count(), 0u);
  EXPECT_DOUBLE_EQ(zero.sum(), 0.0);
  EXPECT_DOUBLE_EQ(zero.Mean(), 0.0);

  // Diffing against an empty baseline is a copy.
  const Histogram all = later.DiffSince(Histogram());
  EXPECT_EQ(all.count(), 4u);
  EXPECT_DOUBLE_EQ(all.sum(), 306.0);
}

TEST(MeanAccumulatorTest, MeanAndVariance) {
  MeanAccumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Record(v);
  EXPECT_DOUBLE_EQ(acc.Mean(), 5.0);
  EXPECT_NEAR(acc.Variance(), 4.571428, 1e-5);  // sample variance
  EXPECT_EQ(acc.count(), 8u);
}

// ---------------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(10);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_TRUE(q.Push(3));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.Pop().value(), 3);
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_EQ(q.Size(), 2u);
}

TEST(BoundedQueueTest, CloseDrainsThenReturnsNullopt) {
  BoundedQueue<int> q(10);
  q.Push(7);
  q.Close();
  EXPECT_FALSE(q.Push(8));
  EXPECT_EQ(q.Pop().value(), 7);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BoundedQueueTest, PopWithTimeoutTimesOut) {
  BoundedQueue<int> q(10);
  auto r = q.PopWithTimeout(std::chrono::microseconds(1000));
  EXPECT_FALSE(r.has_value());
}

TEST(BoundedQueueTest, ConcurrentProducersConsumers) {
  BoundedQueue<int> q(16);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<int64_t> sum{0};
  std::atomic<int> consumed{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        auto v = q.Pop();
        if (!v.has_value()) return;
        sum += *v;
        consumed++;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.Close();
  threads[kProducers].join();
  threads[kProducers + 1].join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), total);
  EXPECT_EQ(sum.load(), static_cast<int64_t>(total) * (total - 1) / 2);
}

}  // namespace
}  // namespace quaestor
