#include <gtest/gtest.h>

#include <thread>

#include "common/clock.h"
#include "kv/kv_store.h"

namespace quaestor::kv {
namespace {

class KvStoreTest : public ::testing::Test {
 protected:
  KvStoreTest() : clock_(0), kv_(&clock_) {}
  SimulatedClock clock_;
  KvStore kv_;
};

TEST_F(KvStoreTest, SetGetDel) {
  kv_.Set("k", "v");
  ASSERT_TRUE(kv_.Get("k").ok());
  EXPECT_EQ(kv_.Get("k").value(), "v");
  EXPECT_TRUE(kv_.Exists("k"));
  EXPECT_TRUE(kv_.Del("k"));
  EXPECT_FALSE(kv_.Exists("k"));
  EXPECT_FALSE(kv_.Del("k"));
  EXPECT_TRUE(kv_.Get("k").status().IsNotFound());
}

TEST_F(KvStoreTest, SetOverwrites) {
  kv_.Set("k", "v1");
  kv_.Set("k", "v2");
  EXPECT_EQ(kv_.Get("k").value(), "v2");
}

TEST_F(KvStoreTest, TtlExpiresKeys) {
  kv_.Set("k", "v", /*ttl_micros=*/1000);
  EXPECT_TRUE(kv_.Exists("k"));
  clock_.Advance(999);
  EXPECT_TRUE(kv_.Exists("k"));
  clock_.Advance(1);
  EXPECT_FALSE(kv_.Exists("k"));
  EXPECT_TRUE(kv_.Get("k").status().IsNotFound());
}

TEST_F(KvStoreTest, TtlQueries) {
  kv_.Set("forever", "v");
  kv_.Set("brief", "v", 1000);
  EXPECT_EQ(kv_.Ttl("forever").value(), -1);
  EXPECT_EQ(kv_.Ttl("brief").value(), 1000);
  clock_.Advance(400);
  EXPECT_EQ(kv_.Ttl("brief").value(), 600);
  EXPECT_FALSE(kv_.Ttl("missing").has_value());
}

TEST_F(KvStoreTest, ExpireUpdatesTtl) {
  kv_.Set("k", "v");
  EXPECT_TRUE(kv_.Expire("k", 500));
  clock_.Advance(501);
  EXPECT_FALSE(kv_.Exists("k"));
  EXPECT_FALSE(kv_.Expire("k", 100));  // already gone
}

TEST_F(KvStoreTest, SweepExpiredRemovesEagerly) {
  kv_.Set("a", "1", 100);
  kv_.Set("b", "2", 200);
  kv_.Set("c", "3");
  clock_.Advance(150);
  EXPECT_EQ(kv_.SweepExpired(), 1u);
  EXPECT_EQ(kv_.Size(), 2u);
}

TEST_F(KvStoreTest, IncrBy) {
  EXPECT_EQ(kv_.IncrBy("n", 5).value(), 5);
  EXPECT_EQ(kv_.IncrBy("n", -2).value(), 3);
  EXPECT_EQ(kv_.Get("n").value(), "3");
}

TEST_F(KvStoreTest, IncrByNonNumericFails) {
  kv_.Set("k", "abc");
  EXPECT_FALSE(kv_.IncrBy("k", 1).ok());
}

TEST_F(KvStoreTest, HashOps) {
  EXPECT_TRUE(kv_.HSet("h", "f1", "v1"));
  EXPECT_FALSE(kv_.HSet("h", "f1", "v2"));  // overwrite returns false
  EXPECT_TRUE(kv_.HSet("h", "f2", "x"));
  EXPECT_EQ(kv_.HGet("h", "f1").value(), "v2");
  EXPECT_TRUE(kv_.HGet("h", "missing").status().IsNotFound());
  EXPECT_TRUE(kv_.HGet("missing", "f").status().IsNotFound());
  auto all = kv_.HGetAll("h");
  EXPECT_EQ(all.size(), 2u);
  EXPECT_TRUE(kv_.HDel("h", "f1"));
  EXPECT_FALSE(kv_.HDel("h", "f1"));
  EXPECT_EQ(kv_.HGetAll("h").size(), 1u);
}

TEST_F(KvStoreTest, HashDeletedWhenEmpty) {
  kv_.HSet("h", "f", "v");
  kv_.HDel("h", "f");
  EXPECT_FALSE(kv_.Exists("h"));
}

TEST_F(KvStoreTest, HIncrBy) {
  EXPECT_EQ(kv_.HIncrBy("h", "count", 3).value(), 3);
  EXPECT_EQ(kv_.HIncrBy("h", "count", -1).value(), 2);
  EXPECT_EQ(kv_.HGet("h", "count").value(), "2");
}

TEST_F(KvStoreTest, PubSubDeliversToSubscribers) {
  std::vector<std::string> got;
  const uint64_t id = kv_.Subscribe(
      "chan", [&](const std::string&, const std::string& msg) {
        got.push_back(msg);
      });
  EXPECT_EQ(kv_.Publish("chan", "m1"), 1u);
  EXPECT_EQ(kv_.Publish("other", "m2"), 0u);
  kv_.Unsubscribe(id);
  EXPECT_EQ(kv_.Publish("chan", "m3"), 0u);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "m1");
}

TEST_F(KvStoreTest, MultipleSubscribers) {
  int count = 0;
  kv_.Subscribe("c", [&](const std::string&, const std::string&) { count++; });
  kv_.Subscribe("c", [&](const std::string&, const std::string&) { count++; });
  EXPECT_EQ(kv_.Publish("c", "m"), 2u);
  EXPECT_EQ(count, 2);
}

TEST_F(KvStoreTest, QueuePushPopFifo) {
  kv_.QueuePush("q", "a");
  kv_.QueuePush("q", "b");
  EXPECT_EQ(kv_.QueueLen("q"), 2u);
  EXPECT_EQ(kv_.QueueTryPop("q").value(), "a");
  EXPECT_EQ(kv_.QueueTryPop("q").value(), "b");
  EXPECT_FALSE(kv_.QueueTryPop("q").has_value());
}

TEST_F(KvStoreTest, QueuePopBlocksUntilPush) {
  std::thread producer([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    kv_.QueuePush("q", "late");
  });
  auto msg = kv_.QueuePop("q", /*timeout_micros=*/1000000);
  producer.join();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(*msg, "late");
}

TEST_F(KvStoreTest, QueuePopTimesOut) {
  EXPECT_FALSE(kv_.QueuePop("empty", 1000).has_value());
}

TEST_F(KvStoreTest, FlushAllClearsData) {
  kv_.Set("a", "1");
  kv_.HSet("h", "f", "v");
  kv_.FlushAll();
  EXPECT_EQ(kv_.Size(), 0u);
}

TEST_F(KvStoreTest, SetClearsHashState) {
  kv_.HSet("k", "f", "v");
  kv_.Set("k", "plain");
  EXPECT_EQ(kv_.Get("k").value(), "plain");
  EXPECT_TRUE(kv_.HGet("k", "f").status().IsNotFound());
}

}  // namespace
}  // namespace quaestor::kv
