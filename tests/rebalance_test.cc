// Elastic scale-out chaos suite: live Resize() up/down mid-stream —
// against faulty channels, node kills, and a consistency oracle. The
// core property throughout: a cluster that resizes mid-stream delivers
// the exact notification multiset of a fixed-size cluster of the target
// shape (zero loss, zero duplication), and any staleness the migration
// introduces stays inside the declared degraded window.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "check/oracle.h"
#include "client/client.h"
#include "common/clock.h"
#include "common/random.h"
#include "core/server.h"
#include "db/database.h"
#include "fault/fault_injector.h"
#include "fault/faulty_kv_store.h"
#include "invalidb/cluster.h"
#include "invalidb/transport.h"
#include "kv/kv_store.h"
#include "webcache/web_cache.h"

namespace quaestor {
namespace {

db::Value Doc(const char* json) {
  auto v = db::Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

db::Query Q(const char* table, const char* filter) {
  auto q = db::Query::ParseJson(table, filter);
  EXPECT_TRUE(q.ok());
  return q.value();
}

// Canonical signature for byte-for-byte multiset comparison. event_time
// is zero-padded so a lexicographic sort groups notifications by change
// event; within one event the emission order legitimately depends on the
// grid shape (which column each query hashes to), so sequences are
// compared as sorted multisets — equality means zero loss AND zero
// duplication, the exact Resize() contract.
std::string Sig(const invalidb::Notification& n) {
  char time_buf[21];
  std::snprintf(time_buf, sizeof(time_buf), "%020lld",
                static_cast<long long>(n.event_time));
  return std::string(time_buf) + "|" + n.query_key + "|" + n.record_id + "|" +
         std::to_string(static_cast<int>(n.type)) + "|" +
         std::to_string(n.new_index);
}

db::ChangeEvent Change(const std::string& id, int g, int score, Micros at) {
  db::ChangeEvent ev;
  ev.kind = db::WriteKind::kUpdate;
  ev.after.table = "posts";
  ev.after.id = id;
  ev.after.body = Doc(("{\"g\":" + std::to_string(g) +
                       ",\"score\":" + std::to_string(score) + "}")
                          .c_str());
  ev.after.write_time = at;
  ev.commit_time = at;
  return ev;
}

std::vector<db::Query> TestQueries() {
  std::vector<db::Query> queries;
  queries.push_back(Q("posts", R"({"g":{"$gte":1}})"));
  queries.push_back(Q("posts", R"({"g":2})"));
  db::Query top = Q("posts", R"({"g":{"$gte":0}})");
  top.SetOrderBy({{"score", false}}).SetLimit(3);
  queries.push_back(top);  // stateful: sorted-layer coverage
  return queries;
}

// Deterministic update stream: group/score churn moves records in and out
// of every query's result, so adds, removes, changes, and index moves all
// occur.
std::vector<db::ChangeEvent> MakeStream(uint64_t seed, size_t num_events,
                                        SimulatedClock* clock) {
  Rng rng(seed ^ 0x57f3);
  std::vector<db::ChangeEvent> stream;
  stream.reserve(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    clock->Advance(kMicrosPerMilli);
    stream.push_back(Change("d" + std::to_string(rng.NextUint64(12)),
                            static_cast<int>(rng.NextUint64(4)),
                            static_cast<int>(rng.NextUint64(100)),
                            clock->NowMicros()));
  }
  return stream;
}

// ---------------------------------------------------------------------------
// Resize mid-stream == fixed-size reference (synchronous clusters)
// ---------------------------------------------------------------------------

// Applies `stream` to a cluster, resizing at the scheduled points, and
// returns the sorted notification multiset.
std::vector<std::string> RunResizingCluster(
    const std::vector<db::ChangeEvent>& stream,
    const std::vector<fault::ResizePoint>& schedule,
    invalidb::InvalidbOptions opts, SimulatedClock* clock) {
  std::vector<std::string> sigs;
  invalidb::InvalidbCluster cluster(
      clock, opts,
      [&](const invalidb::Notification& n) { sigs.push_back(Sig(n)); });
  for (const db::Query& q : TestQueries()) {
    EXPECT_TRUE(cluster.RegisterQuery(q, {}, invalidb::kEventsAll).ok());
  }
  size_t next = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    while (next < schedule.size() && schedule[next].after_event == i) {
      cluster.Resize(schedule[next].query_partitions,
                     schedule[next].object_partitions);
      next++;
    }
    cluster.OnChange(stream[i]);
  }
  while (next < schedule.size()) {
    cluster.Resize(schedule[next].query_partitions,
                   schedule[next].object_partitions);
    next++;
  }
  std::sort(sigs.begin(), sigs.end());
  return sigs;
}

TEST(RebalanceTest, ResizeMidStreamMatchesFixedReferenceAcross20Seeds) {
  constexpr size_t kEvents = 60;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const std::vector<fault::ResizePoint> schedule =
        fault::MakeResizeSchedule(seed, kEvents, /*max_resizes=*/3,
                                  /*max_partitions=*/3);
    ASSERT_FALSE(schedule.empty());

    SimulatedClock chaos_clock(0);
    const std::vector<db::ChangeEvent> stream =
        MakeStream(seed, kEvents, &chaos_clock);

    invalidb::InvalidbOptions start;  // 1x1
    SimulatedClock run_clock(0);
    const std::vector<std::string> got =
        RunResizingCluster(stream, schedule, start, &run_clock);

    // Reference: a freshly-constructed fixed cluster of the target shape.
    invalidb::InvalidbOptions target;
    target.query_partitions = schedule.back().query_partitions;
    target.object_partitions = schedule.back().object_partitions;
    SimulatedClock ref_clock(0);
    const std::vector<std::string> expected =
        RunResizingCluster(stream, {}, target, &ref_clock);

    ASSERT_GT(expected.size(), kEvents) << "seed " << seed;  // non-vacuous
    EXPECT_EQ(got, expected) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Resize over a lossy, duplicating, reordering transport
// ---------------------------------------------------------------------------

// Ships the stream through a remote/worker pair over `kv`, interleaving
// scheduled resize requests, pumping until the pipeline drains. Returns
// the sorted notification multiset.
std::vector<std::string> RunTransportResizeScript(
    const std::vector<db::ChangeEvent>& stream,
    const std::vector<fault::ResizePoint>& schedule,
    invalidb::InvalidbOptions worker_opts, SimulatedClock* clock,
    kv::KvStore* kv, fault::FaultyKvStore* faulty) {
  invalidb::TransportOptions topts;
  topts.reliable.enabled = true;
  topts.reliable.seed = 0xabc;
  std::vector<std::string> sigs;
  invalidb::InvalidbRemote remote(
      clock, kv, "rz",
      [&](const invalidb::Notification& n) { sigs.push_back(Sig(n)); },
      topts);
  invalidb::InvalidbWorker worker(clock, kv, "rz", worker_opts, topts);

  for (const db::Query& q : TestQueries()) {
    remote.RegisterQuery(q, {}, invalidb::kEventsAll);
  }
  size_t next = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    while (next < schedule.size() && schedule[next].after_event == i) {
      remote.Resize(schedule[next].query_partitions,
                    schedule[next].object_partitions);
      next++;
    }
    remote.OnChange(stream[i]);
  }
  while (next < schedule.size()) {
    remote.Resize(schedule[next].query_partitions,
                  schedule[next].object_partitions);
    next++;
  }

  for (int round = 0; round < 400; ++round) {
    worker.ProcessPending();
    remote.DrainNotifications();
    clock->Advance(150 * kMicrosPerMilli);
    worker.Tick();
    remote.Tick();
    const bool drained =
        remote.unacked_requests() == 0 && remote.pending_notifications() == 0 &&
        kv->QueueLen("rz:requests") == 0 &&
        kv->QueueLen("rz:notifications") == 0 &&
        (faulty == nullptr || faulty->held_count() == 0);
    if (drained && round > 4) break;
  }
  std::sort(sigs.begin(), sigs.end());
  return sigs;
}

TEST(RebalanceTest, FaultyChannelResizeByteIdenticalAcross20Seeds) {
  constexpr size_t kEvents = 50;
  fault::FaultProfile profile;
  profile.drop_rate = 0.10;
  profile.duplicate_rate = 0.10;
  profile.reorder_rate = 0.10;
  uint64_t total_dropped = 0;
  uint64_t total_duplicated = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const std::vector<fault::ResizePoint> schedule =
        fault::MakeResizeSchedule(seed, kEvents, /*max_resizes=*/2,
                                  /*max_partitions=*/3);
    ASSERT_FALSE(schedule.empty());
    SimulatedClock stream_clock(0);
    const std::vector<db::ChangeEvent> stream =
        MakeStream(seed, kEvents, &stream_clock);

    // Reference: perfect channel, fixed target-shape cluster, no resizes.
    invalidb::InvalidbOptions target;
    target.query_partitions = schedule.back().query_partitions;
    target.object_partitions = schedule.back().object_partitions;
    SimulatedClock ref_clock(0);
    kv::KvStore ref_kv(&ref_clock);
    const std::vector<std::string> expected = RunTransportResizeScript(
        stream, {}, target, &ref_clock, &ref_kv, nullptr);

    // Chaos: 10% drop/dup/reorder channel, cluster starts 1x1 and resizes
    // mid-stream (queue order places each cutover exactly between two
    // changes, which the reliable layer preserves through the faults).
    SimulatedClock clock(0);
    fault::FaultInjector injector(seed * 7919 + 13, profile);
    fault::FaultyKvStore faulty(&clock, &injector);
    const std::vector<std::string> got = RunTransportResizeScript(
        stream, schedule, invalidb::InvalidbOptions(), &clock, &faulty,
        &faulty);

    ASSERT_GT(expected.size(), kEvents / 2) << "seed " << seed;
    EXPECT_EQ(got, expected) << "seed " << seed;
    total_dropped += injector.stats().dropped;
    total_duplicated += injector.stats().duplicated;
  }
  // The sweep actually exercised the faults it claims to survive.
  EXPECT_GT(total_dropped, 20u);
  EXPECT_GT(total_duplicated, 20u);
}

// ---------------------------------------------------------------------------
// Evaluator-path resize: recovery from dead nodes
// ---------------------------------------------------------------------------

TEST(RebalanceTest, EvaluatorResizeRecoversStateLostToDeadNodes) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  std::vector<invalidb::Notification> received;
  invalidb::InvalidbOptions opts;
  opts.query_partitions = 2;
  opts.object_partitions = 2;
  invalidb::InvalidbCluster cluster(
      &clock, opts,
      [&](const invalidb::Notification& n) { received.push_back(n); });
  db::Query q = Q("posts", R"({"g":{"$gte":1}})");
  ASSERT_TRUE(cluster.RegisterQuery(q, {}, invalidb::kEventsAll).ok());

  auto commit = [&](const std::string& id, int g) {
    auto r = db.Upsert(
        "posts", id, Doc(("{\"g\":" + std::to_string(g) + "}").c_str()));
    ASSERT_TRUE(r.ok());
    clock.Advance(kMicrosPerMilli);
    cluster.OnChange(
        Change(id, g, /*score=*/0, r.value().write_time));
  };

  for (int i = 0; i < 8; ++i) commit("d" + std::to_string(i), 1);
  const size_t before_kill = received.size();
  EXPECT_EQ(before_kill, 8u);  // every insert produced one kAdd

  // Kill every node and keep committing: these adds are lost in-flight
  // AND absent from the matchers.
  for (size_t n = 0; n < cluster.NumNodes(); ++n) cluster.KillNode(n);
  for (int i = 8; i < 12; ++i) commit("d" + std::to_string(i), 1);
  EXPECT_EQ(received.size(), before_kill);
  EXPECT_GT(cluster.stats().tasks_dropped_dead, 0u);

  // Evaluator-path resize rebuilds the grid from the authoritative
  // database — dead nodes and all.
  const size_t reinstalled = cluster.Resize(
      3, 2, [&](const db::Query& query) { return db.Execute(query); });
  EXPECT_EQ(reinstalled, 1u);
  EXPECT_EQ(cluster.NumNodes(), 6u);
  EXPECT_EQ(cluster.AliveCount(), 6u);
  EXPECT_EQ(cluster.options().query_partitions, 3u);
  EXPECT_EQ(cluster.options().object_partitions, 2u);

  // d10's membership was recovered: an in-place update is a kChange (a
  // grid that lost d10 would emit kAdd), and leaving the result emits
  // kRemove.
  commit("d10", 2);
  ASSERT_EQ(received.size(), before_kill + 1);
  EXPECT_EQ(received.back().type, invalidb::NotificationType::kChange);
  EXPECT_EQ(received.back().record_id, "d10");
  commit("d10", 0);
  ASSERT_EQ(received.size(), before_kill + 2);
  EXPECT_EQ(received.back().type, invalidb::NotificationType::kRemove);

  const invalidb::ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.rebalance_resizes, 1u);
  EXPECT_EQ(stats.rebalance_queries_reinstalled, 1u);
  EXPECT_EQ(stats.rebalance_nodes_added, 2u);  // 4 -> 6
  EXPECT_EQ(cluster.MigrationPauseHistogram().count(), 1u);
}

// ---------------------------------------------------------------------------
// Oracle-checked: kills + outage + resize, Δ widened only while degraded
// ---------------------------------------------------------------------------

TEST(RebalanceChaosTest, ResizeDuringKillsAndOutageWithinDegradedBudget) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  core::ServerOptions sopts;
  sopts.invalidb_options.query_partitions = 2;
  sopts.invalidb_options.object_partitions = 2;
  sopts.degradation.enabled = true;
  sopts.degradation.staleness_budget = 5 * kMicrosPerSecond;
  sopts.degradation.degraded_ttl_cap = 500 * kMicrosPerMilli;
  core::QuaestorServer server(&clock, &db, sopts);

  check::OracleOptions oopts;
  oopts.delta = SecondsToMicros(1.0);
  check::ConsistencyOracle oracle(&clock, &db, oopts);
  db.AddChangeListener(
      [&](const db::ChangeEvent& ev) { oracle.OnCommit(ev); });

  webcache::ExpirationCache cache(&clock);
  client::ClientOptions copts;
  copts.ebf_refresh_interval = oopts.delta;
  client::QuaestorClient c(&clock, &server, &cache, nullptr, copts);
  c.Connect();

  db::Query q = Q("posts", R"({"g":{"$gte":1}})");
  oracle.TrackQuery(q);
  ASSERT_TRUE(server.Insert("posts", "d1", Doc(R"({"g":1})")).ok());

  int next_value = 2;
  auto write = [&] {
    ASSERT_TRUE(server
                    .Update("posts", "d1",
                            db::Update().Set(
                                "g", db::Value(int64_t{next_value++})))
                    .ok());
  };
  auto step = [&](Micros advance) {
    clock.Advance(advance);
    auto rr = c.Read("posts", "d1");
    oracle.CheckRead("s", "posts/d1", rr.status.ok(), rr.version);
    auto qr = c.ExecuteQuery(q);
    oracle.CheckQuery("s", q, qr.status.ok(), qr.etag, qr.representation);
  };

  step(10 * kMicrosPerMilli);  // healthy warm-up
  ASSERT_TRUE(oracle.violations().empty());

  // A healthy-grid resize is zero-loss: the strict Δ bound must keep
  // holding with no widening at all.
  server.ResizeInvalidb(3, 1);
  for (int i = 0; i < 5; ++i) {
    write();
    step(300 * kMicrosPerMilli);
  }
  EXPECT_TRUE(oracle.violations().empty())
      << oracle.violations()[0].ToString();

  // Node kill: invalidations through that node are lost, so the oracle's
  // bound widens to the degraded budget — but only inside this bracket.
  server.invalidb().KillNode(1);
  oracle.SetDegraded(true, sopts.degradation.staleness_budget);
  for (int i = 0; i < 10; ++i) {
    write();
    step(300 * kMicrosPerMilli);
  }
  EXPECT_TRUE(server.degraded());

  // Resize while degraded: the evaluator path rebuilds every matcher from
  // the database, so the resize itself doubles as failover recovery.
  server.ResizeInvalidb(2, 2);
  EXPECT_EQ(server.pipeline_health().nodes_alive, 4u);

  // Hard outage with a resize in the middle of it (the fault schedule a
  // production scale-out must survive).
  server.SetPipelineDown(true);
  for (int i = 0; i < 5; ++i) {
    write();
    step(300 * kMicrosPerMilli);
  }
  server.ResizeInvalidb(1, 2);
  EXPECT_TRUE(server.degraded());
  for (int i = 0; i < 5; ++i) {
    write();
    step(300 * kMicrosPerMilli);
  }
  EXPECT_GT(server.stats().change_events_dropped, 0u);
  EXPECT_TRUE(oracle.violations().empty())
      << oracle.violations()[0].ToString();
  EXPECT_GT(oracle.degraded_checks(), 0u);

  // Recovery; after the grace window strict Δ-atomicity must hold again.
  server.SetPipelineDown(false);
  oracle.SetDegraded(false);
  EXPECT_FALSE(server.degraded());
  clock.Advance(sopts.degradation.staleness_budget + kMicrosPerSecond);
  for (int i = 0; i < 10; ++i) {
    write();
    step(300 * kMicrosPerMilli);
  }
  EXPECT_TRUE(oracle.violations().empty())
      << oracle.violations()[0].ToString();
  EXPECT_GT(server.stats().degradation_flips, 0u);
}

// ---------------------------------------------------------------------------
// Threaded mode: zero loss under load, and stats reads race-free (TSan)
// ---------------------------------------------------------------------------

TEST(RebalanceTest, ThreadedResizeUnderLoadLosesAndDuplicatesNothing) {
  invalidb::InvalidbOptions opts;
  opts.threaded = true;
  opts.query_partitions = 2;
  opts.object_partitions = 2;
  std::atomic<uint64_t> delivered{0};
  invalidb::InvalidbCluster cluster(
      SystemClock::Default(), opts,
      [&](const invalidb::Notification&) { delivered++; });
  db::Query q = Q("t", R"({"n":{"$gte":0}})");
  ASSERT_TRUE(cluster.RegisterQuery(q, {}, invalidb::kEventsAll).ok());
  cluster.Flush();

  constexpr int kEvents = 400;
  std::atomic<bool> stop{false};
  // TSan regression for the ClusterStats/QueriesPerNode snapshot race:
  // hammer every observability read while registrations, changes, and
  // resizes are all in flight. The per-node counters are atomics and the
  // node vector is topology-locked, so none of this may race.
  std::thread stats_reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)cluster.QueriesPerNode();
      (void)cluster.OpsPerNode();
      (void)cluster.Health();
      (void)cluster.AliveCount();
      (void)cluster.NumNodes();
      (void)cluster.stats();
    }
  });
  std::thread producer([&] {
    for (int i = 0; i < kEvents; ++i) {
      db::ChangeEvent ev;
      ev.kind = db::WriteKind::kUpdate;
      ev.after.table = "t";
      ev.after.id = "d" + std::to_string(i % 50);
      ev.after.body = Doc(R"({"n":1})");
      cluster.OnChange(ev);
    }
  });

  // Resize up and down while the producer and reader run. The handoff
  // path is safe here: nodes are healthy and the drain guarantees the old
  // grid's matching state is complete at cutover.
  cluster.Resize(1, 3);
  cluster.Resize(3, 2);
  cluster.Resize(2, 2);

  producer.join();
  cluster.Flush();
  stop.store(true, std::memory_order_release);
  stats_reader.join();

  // The query matches every event: exactly one notification per event.
  // A lost event (loss) or re-matched event (duplication) breaks this.
  EXPECT_EQ(delivered.load(), static_cast<uint64_t>(kEvents));
  const invalidb::ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.rebalance_resizes, 3u);
  EXPECT_EQ(stats.changes_ingested, static_cast<uint64_t>(kEvents));
  EXPECT_EQ(cluster.MigrationPauseHistogram().count(), 3u);
  // Sum of per-node installed queries == one query on every row of its
  // column (quiescent cluster: the snapshot is exact).
  const std::vector<size_t> per_node = cluster.QueriesPerNode();
  size_t installed = 0;
  for (size_t count : per_node) installed += count;
  EXPECT_EQ(installed, cluster.options().object_partitions);
}

// Same-shape resize acts as a full grid rebuild.
TEST(RebalanceTest, SameShapeResizeRebuildsInPlace) {
  SimulatedClock clock(0);
  std::vector<invalidb::Notification> received;
  invalidb::InvalidbOptions opts;
  opts.query_partitions = 2;
  opts.object_partitions = 2;
  invalidb::InvalidbCluster cluster(
      &clock, opts,
      [&](const invalidb::Notification& n) { received.push_back(n); });
  db::Query q = Q("posts", R"({"g":1})");
  ASSERT_TRUE(cluster.RegisterQuery(q, {}, invalidb::kEventsAll).ok());
  clock.Advance(kMicrosPerMilli);
  cluster.OnChange(Change("d1", 1, 0, clock.NowMicros()));
  ASSERT_EQ(received.size(), 1u);

  EXPECT_EQ(cluster.Resize(2, 2), 1u);
  EXPECT_EQ(cluster.NumNodes(), 4u);
  EXPECT_TRUE(cluster.IsRegistered(q.NormalizedKey()));

  // Membership survived the rebuild: an in-place update is a kChange.
  clock.Advance(kMicrosPerMilli);
  cluster.OnChange(Change("d1", 1, 1, clock.NowMicros()));
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received.back().type, invalidb::NotificationType::kChange);
}

}  // namespace
}  // namespace quaestor
