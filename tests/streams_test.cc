#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/clock.h"
#include "core/server.h"
#include "core/streams.h"
#include "db/database.h"

namespace quaestor::core {
namespace {

db::Value Doc(const char* json) {
  auto v = db::Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

db::Query Q(const char* table, const char* filter) {
  auto q = db::Query::ParseJson(table, filter);
  EXPECT_TRUE(q.ok());
  return q.value();
}

class StreamsTest : public ::testing::Test {
 protected:
  StreamsTest() : clock_(0), db_(&clock_) {
    server_ = std::make_unique<QuaestorServer>(&clock_, &db_);
    hub_ = std::make_unique<ChangeStreamHub>(server_.get());
  }

  SimulatedClock clock_;
  db::Database db_;
  std::unique_ptr<QuaestorServer> server_;
  std::unique_ptr<ChangeStreamHub> hub_;
};

TEST_F(StreamsTest, SubscribeReturnsInitialResult) {
  ASSERT_TRUE(server_->Insert("posts", "p1", Doc(R"({"g":1})")).ok());
  ASSERT_TRUE(server_->Insert("posts", "p2", Doc(R"({"g":2})")).ok());
  std::vector<db::Document> initial;
  auto id = hub_->Subscribe(Q("posts", R"({"g":1})"),
                            [](const StreamEvent&) {}, &initial);
  ASSERT_TRUE(id.ok());
  ASSERT_EQ(initial.size(), 1u);
  EXPECT_EQ(initial[0].id, "p1");
  EXPECT_EQ(hub_->TotalSubscriptions(), 1u);
}

TEST_F(StreamsTest, DeliversAddChangeRemoveLifecycle) {
  std::vector<StreamEvent> events;
  auto id = hub_->Subscribe(
      Q("posts", R"({"tags":{"$contains":"x"}})"),
      [&](const StreamEvent& ev) { events.push_back(ev); }, nullptr);
  ASSERT_TRUE(id.ok());

  // add
  ASSERT_TRUE(server_->Insert("posts", "p1", Doc(R"({"tags":["x"]})")).ok());
  // change
  db::Update bump;
  bump.Push("tags", db::Value("y"));
  ASSERT_TRUE(server_->Update("posts", "p1", bump).ok());
  // remove
  db::Update pull;
  pull.Pull("tags", db::Value("x"));
  ASSERT_TRUE(server_->Update("posts", "p1", pull).ok());

  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, invalidb::NotificationType::kAdd);
  EXPECT_TRUE(events[0].has_body);
  EXPECT_EQ(events[1].type, invalidb::NotificationType::kChange);
  ASSERT_TRUE(events[1].has_body);
  EXPECT_EQ(events[1].body.Find("tags")->as_array().size(), 2u);
  EXPECT_EQ(events[2].type, invalidb::NotificationType::kRemove);
  EXPECT_FALSE(events[2].has_body);
}

TEST_F(StreamsTest, SortedStreamEmitsWindowEvents) {
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(server_
                    ->Insert("posts", "p" + std::to_string(i),
                             Doc(("{\"score\":" + std::to_string(i * 10) +
                                  "}")
                                     .c_str()))
                    .ok());
  }
  db::Query top = Q("posts", "{}");
  top.SetOrderBy({{"score", false}}).SetLimit(2);
  std::vector<db::Document> initial;
  std::vector<StreamEvent> events;
  auto id = hub_->Subscribe(
      top, [&](const StreamEvent& ev) { events.push_back(ev); }, &initial);
  ASSERT_TRUE(id.ok());
  ASSERT_EQ(initial.size(), 2u);
  EXPECT_EQ(initial[0].id, "p2");

  // A new top scorer: p0 window events with indices.
  ASSERT_TRUE(
      server_->Insert("posts", "p9", Doc(R"({"score":999})")).ok());
  ASSERT_GE(events.size(), 2u);
  bool saw_add_at_zero = false;
  for (const StreamEvent& ev : events) {
    if (ev.type == invalidb::NotificationType::kAdd &&
        ev.record_id == "p9") {
      EXPECT_EQ(ev.new_index, 0);
      saw_add_at_zero = true;
    }
  }
  EXPECT_TRUE(saw_add_at_zero);
}

TEST_F(StreamsTest, MultipleSubscribersShareOneRegistration) {
  int a_events = 0;
  int b_events = 0;
  db::Query q = Q("posts", R"({"g":1})");
  ASSERT_TRUE(hub_->Subscribe(
                      q, [&](const StreamEvent&) { a_events++; }, nullptr)
                  .ok());
  ASSERT_TRUE(hub_->Subscribe(
                      q, [&](const StreamEvent&) { b_events++; }, nullptr)
                  .ok());
  EXPECT_EQ(hub_->SubscriberCount(q.NormalizedKey()), 2u);
  EXPECT_EQ(server_->invalidb().RegisteredCount(), 1u);

  ASSERT_TRUE(server_->Insert("posts", "p1", Doc(R"({"g":1})")).ok());
  EXPECT_EQ(a_events, 1);
  EXPECT_EQ(b_events, 1);
}

TEST_F(StreamsTest, UnsubscribeStopsDelivery) {
  int events = 0;
  db::Query q = Q("posts", R"({"g":1})");
  auto id = hub_->Subscribe(
      q, [&](const StreamEvent&) { events++; }, nullptr);
  ASSERT_TRUE(id.ok());
  hub_->Unsubscribe(id.value());
  EXPECT_EQ(hub_->TotalSubscriptions(), 0u);
  ASSERT_TRUE(server_->Insert("posts", "p1", Doc(R"({"g":1})")).ok());
  EXPECT_EQ(events, 0);
}

TEST_F(StreamsTest, UnsubscribeUnknownIdIsNoop) {
  hub_->Unsubscribe(12345);
  EXPECT_EQ(hub_->TotalSubscriptions(), 0u);
}

TEST_F(StreamsTest, StreamCoexistsWithCaching) {
  // A query can be both cached (via the normal fetch path) and streamed.
  ASSERT_TRUE(server_->Insert("posts", "p1", Doc(R"({"g":1})")).ok());
  db::Query q = Q("posts", R"({"g":1})");
  int events = 0;
  ASSERT_TRUE(hub_->Subscribe(
                      q, [&](const StreamEvent&) { events++; }, nullptr)
                  .ok());
  // Cached fetch path reuses the existing registration.
  server_->RegisterQueryShape(q);
  webcache::HttpRequest req;
  req.key = q.NormalizedKey();
  auto resp = server_->Fetch(req);
  ASSERT_TRUE(resp.ok);
  EXPECT_GT(resp.ttl, 0);

  clock_.Advance(kMicrosPerSecond);
  db::Update u;
  u.Set("g", db::Value(2));
  ASSERT_TRUE(server_->Update("posts", "p1", u).ok());
  // Both consumers observe the change: the stream got an event and the
  // cached result was flagged stale.
  EXPECT_EQ(events, 1);
  EXPECT_TRUE(server_->ebf().IsStale(q.NormalizedKey()));
}

}  // namespace
}  // namespace quaestor::core
