// Property test: predicate-indexed matching is observationally equivalent
// to brute force. Two MatchingNodes — one indexed, one brute-force — get
// the same queries, the same initial result ids, and the same randomized
// change stream; they must emit identical notification sequences (the
// index may only prune queries whose outcome is provably "no event").
// A second property does the same for Table::Execute: an indexed table
// and an index-free table answering the same randomized queries over the
// same data must return byte-identical results.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"
#include "db/query.h"
#include "db/table.h"
#include "db/value.h"
#include "fault/fault_injector.h"
#include "fault/faulty_kv_store.h"
#include "invalidb/cluster.h"
#include "invalidb/matching_node.h"
#include "invalidb/transport.h"
#include "kv/kv_store.h"

namespace quaestor::invalidb {
namespace {

using db::Array;
using db::ChangeEvent;
using db::CompareOp;
using db::Document;
using db::Object;
using db::Predicate;
using db::Query;
using db::Value;
using db::WriteKind;

const char* const kStrings[] = {"alpha", "alps",  "beta", "bet",
                                "gamma", "gam",   "",     "delta"};
const char* const kPaths[] = {"a", "b", "s", "tags", "nested.x",
                              "nested.y", "tags.0", "missing"};

Value RandomScalar(Rng& rng) {
  switch (rng.NextUint64(5)) {
    case 0:
      return Value(nullptr);
    case 1:
      return Value(rng.NextBool(0.5));
    case 2:
      return Value(static_cast<int64_t>(rng.NextUint64(6)));
    case 3:
      return Value(static_cast<double>(rng.NextUint64(6)) / 2.0);
    default:
      return Value(kStrings[rng.NextUint64(8)]);
  }
}

Value RandomDoc(Rng& rng) {
  Object doc;
  if (rng.NextBool(0.9)) doc["a"] = RandomScalar(rng);
  if (rng.NextBool(0.8)) doc["b"] = RandomScalar(rng);
  if (rng.NextBool(0.8)) doc["s"] = Value(kStrings[rng.NextUint64(8)]);
  if (rng.NextBool(0.7)) {
    Array tags;
    const size_t n = rng.NextUint64(4);
    for (size_t i = 0; i < n; ++i) tags.push_back(RandomScalar(rng));
    doc["tags"] = Value(std::move(tags));
  }
  if (rng.NextBool(0.6)) {
    Object nested;
    if (rng.NextBool(0.8)) nested["x"] = RandomScalar(rng);
    if (rng.NextBool(0.5)) nested["y"] = RandomScalar(rng);
    doc["nested"] = Value(std::move(nested));
  }
  return Value(std::move(doc));
}

/// Random predicates spanning every operator the query language has —
/// indexable conjuncts (eq / in / ranges / prefix), residual leaves
/// ($ne, $nin, $contains, $exists), and boolean combinators. The point
/// is to stress BOTH sides of the query index's indexable/residual split.
Predicate RandomPredicate(Rng& rng, int depth) {
  const uint64_t roll = rng.NextUint64(depth > 0 ? 10 : 7);
  if (roll < 7) {
    const std::string path = kPaths[rng.NextUint64(8)];
    const CompareOp ops[] = {
        CompareOp::kEq,  CompareOp::kNe,       CompareOp::kGt,
        CompareOp::kGte, CompareOp::kLt,       CompareOp::kLte,
        CompareOp::kIn,  CompareOp::kNin,      CompareOp::kContains,
        CompareOp::kExists, CompareOp::kPrefix};
    const CompareOp op = ops[rng.NextUint64(11)];
    Value operand;
    if (op == CompareOp::kIn || op == CompareOp::kNin) {
      Array elems;
      const size_t n = 1 + rng.NextUint64(3);
      for (size_t i = 0; i < n; ++i) elems.push_back(RandomScalar(rng));
      operand = Value(std::move(elems));
    } else if (op == CompareOp::kExists) {
      operand = Value(rng.NextBool(0.5));
    } else {
      operand = RandomScalar(rng);
    }
    return Predicate::Compare(path, op, operand);
  }
  if (roll < 8) {  // NOT
    return Predicate::Not(RandomPredicate(rng, depth - 1));
  }
  std::vector<Predicate> children;
  const size_t n = 2 + rng.NextUint64(2);
  for (size_t i = 0; i < n; ++i) {
    children.push_back(RandomPredicate(rng, depth - 1));
  }
  return roll < 9 ? Predicate::And(std::move(children))
                  : Predicate::Or(std::move(children));
}

bool NotificationLess(const Notification& x, const Notification& y) {
  if (x.query_key != y.query_key) return x.query_key < y.query_key;
  if (x.record_id != y.record_id) return x.record_id < y.record_id;
  return x.type < y.type;
}

// ---------------------------------------------------------------------------
// MatchingNode: indexed vs brute force
// ---------------------------------------------------------------------------

TEST(MatchingEquivalenceTest, IndexedNodeEmitsExactlyBruteForceEvents) {
  Rng rng(0x5EED2026);
  constexpr int kQueries = 120;
  constexpr int kRecords = 40;
  constexpr int kEvents = 600;

  // Initial record pool; queries are installed with consistent initial
  // result ids so remove events are reachable from the very first change.
  std::map<std::string, Value> live;
  for (int i = 0; i < kRecords; ++i) {
    live["r" + std::to_string(i)] = RandomDoc(rng);
  }

  MatchingNode indexed(/*use_index=*/true);
  MatchingNode brute(/*use_index=*/false);
  size_t installed = 0;
  for (int i = 0; i < kQueries; ++i) {
    Query q("t", RandomPredicate(rng, 2));
    // Key by index so duplicate predicates stay distinct installations.
    const std::string key = std::to_string(i) + ":" + q.NormalizedKey();
    std::vector<std::string> ids;
    for (const auto& [id, body] : live) {
      if (q.Matches(body)) ids.push_back(id);
    }
    indexed.AddQuery(q, key, ids);
    brute.AddQuery(q, key, std::move(ids));
    ++installed;
  }
  ASSERT_EQ(indexed.QueryCount(), installed);
  // The generator must produce both indexable and residual queries, or
  // the equivalence property is vacuous on one side of the split.
  ASSERT_GT(indexed.ResidualQueryCount(), 0u);
  ASSERT_LT(indexed.ResidualQueryCount(), installed);

  std::vector<Notification> got, want;
  size_t total_events = 0, adds = 0, removes = 0, changes = 0;
  for (int round = 0; round < kEvents; ++round) {
    const std::string id = "r" + std::to_string(rng.NextUint64(kRecords));
    ChangeEvent ev;
    ev.commit_time = round;
    ev.after.table = "t";
    ev.after.id = id;
    ev.after.version = static_cast<uint64_t>(round) + 2;
    const auto it = live.find(id);
    if (it != live.end() && rng.NextBool(0.2)) {
      ev.kind = WriteKind::kDelete;
      ev.after.deleted = true;
      ev.after.body = it->second;  // last pre-delete body
      live.erase(it);
    } else {
      ev.kind = it == live.end() ? WriteKind::kInsert : WriteKind::kUpdate;
      ev.after.body = RandomDoc(rng);
      live[id] = ev.after.body;
    }

    got.clear();
    want.clear();
    const MatchingNode::MatchStats ms = indexed.Match(ev, &got);
    brute.Match(ev, &want);
    EXPECT_EQ(ms.installed, installed);
    EXPECT_LE(ms.checked, installed);
    // Every emitted notification implies the query was a candidate.
    EXPECT_LE(got.size(), ms.checked);

    std::sort(got.begin(), got.end(), NotificationLess);
    std::sort(want.begin(), want.end(), NotificationLess);
    ASSERT_EQ(got.size(), want.size())
        << "event " << round << " id " << id << " body "
        << ev.after.body.ToJson();
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].query_key, want[i].query_key) << "event " << round;
      ASSERT_EQ(got[i].record_id, want[i].record_id) << "event " << round;
      ASSERT_EQ(got[i].type, want[i].type)
          << "event " << round << " query " << got[i].query_key;
      ASSERT_EQ(got[i].event_time, want[i].event_time);
      switch (got[i].type) {
        case NotificationType::kAdd: ++adds; break;
        case NotificationType::kRemove: ++removes; break;
        default: ++changes; break;
      }
    }
    total_events += got.size();
  }

  // Anti-vacuity: the stream must exercise every membership transition.
  EXPECT_GT(adds, 100u);
  EXPECT_GT(removes, 100u);
  EXPECT_GT(changes, 100u);
  EXPECT_GT(total_events, 0u);
  // And the index must have actually pruned work, not merely matched it.
  // (The generator is deliberately residual-heavy, so the margin is small
  // here; the selective-workload speedup is measured by the benchmark.)
  EXPECT_LT(indexed.match_checks(), indexed.match_checks_naive());
  EXPECT_EQ(brute.match_checks(), brute.match_checks_naive());
}

// ---------------------------------------------------------------------------
// Cluster with a live Resize() mid-stream vs brute force
// ---------------------------------------------------------------------------

// A cluster that repartitions halfway through a randomized update stream
// must emit exactly the notifications a single brute-force MatchingNode
// emits for the same stream — the Resize() zero-loss/zero-duplication
// contract checked against the simplest possible oracle.
TEST(MatchingEquivalenceTest, ClusterResizeMidUpdatesMatchesBruteForce) {
  Rng rng(0xE1A57);
  constexpr int kQueries = 60;
  constexpr int kRecords = 30;
  constexpr int kEvents = 400;

  std::map<std::string, Value> live;
  for (int i = 0; i < kRecords; ++i) {
    live["r" + std::to_string(i)] = RandomDoc(rng);
  }

  SimulatedClock clock(0);
  std::vector<Notification> got;
  InvalidbOptions opts;
  opts.query_partitions = 2;
  opts.object_partitions = 2;
  InvalidbCluster cluster(&clock, opts, [&](const Notification& n) {
    got.push_back(n);
  });
  MatchingNode brute(/*use_index=*/false);

  // Stateless queries only: the sorted layer is covered by
  // rebalance_test; here the brute node must be a complete oracle. The
  // cluster keys by NormalizedKey, so duplicate predicates are skipped on
  // both sides.
  size_t installed = 0;
  for (int i = 0; i < kQueries && installed < 40; ++i) {
    Query q("t", RandomPredicate(rng, 2));
    std::vector<Document> initial;
    std::vector<std::string> ids;
    for (const auto& [id, body] : live) {
      if (q.Matches(body)) {
        Document doc;
        doc.table = "t";
        doc.id = id;
        doc.body = body;
        initial.push_back(doc);
        ids.push_back(id);
      }
    }
    if (!cluster.RegisterQuery(q, initial, kEventsAll).ok()) continue;
    brute.AddQuery(q, q.NormalizedKey(), std::move(ids));
    ++installed;
  }
  ASSERT_GT(installed, 20u);

  std::vector<Notification> want;
  size_t events_before_resize = 0;
  for (int round = 0; round < kEvents; ++round) {
    if (round == kEvents / 2) {
      events_before_resize = got.size();
      // Handoff path: the healthy grid carries its matching state over.
      ASSERT_EQ(cluster.Resize(3, 2), installed);
    }
    clock.Advance(kMicrosPerMilli);
    const std::string id = "r" + std::to_string(rng.NextUint64(kRecords));
    ChangeEvent ev;
    ev.commit_time = clock.NowMicros();
    ev.after.table = "t";
    ev.after.id = id;
    ev.after.version = static_cast<uint64_t>(round) + 2;
    const auto it = live.find(id);
    if (it != live.end() && rng.NextBool(0.2)) {
      ev.kind = WriteKind::kDelete;
      ev.after.deleted = true;
      ev.after.body = it->second;
      live.erase(it);
    } else {
      ev.kind = it == live.end() ? WriteKind::kInsert : WriteKind::kUpdate;
      ev.after.body = RandomDoc(rng);
      live[id] = ev.after.body;
    }
    cluster.OnChange(ev);
    brute.Match(ev, &want);
  }

  const auto by_all = [](const Notification& x, const Notification& y) {
    if (x.event_time != y.event_time) return x.event_time < y.event_time;
    return NotificationLess(x, y);
  };
  std::sort(got.begin(), got.end(), by_all);
  std::sort(want.begin(), want.end(), by_all);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].query_key, want[i].query_key) << "pos " << i;
    ASSERT_EQ(got[i].record_id, want[i].record_id) << "pos " << i;
    ASSERT_EQ(got[i].type, want[i].type) << "pos " << i;
    ASSERT_EQ(got[i].event_time, want[i].event_time) << "pos " << i;
  }
  // Anti-vacuity: the stream produced notifications on both sides of the
  // repartition, and the resize actually ran.
  EXPECT_GT(events_before_resize, 50u);
  EXPECT_GT(got.size(), events_before_resize + 50u);
  EXPECT_EQ(cluster.stats().rebalance_resizes, 1u);
  EXPECT_EQ(cluster.NumNodes(), 6u);
}

// ---------------------------------------------------------------------------
// Table::Execute: indexed vs scan
// ---------------------------------------------------------------------------

Query RandomTableQuery(Rng& rng) {
  Query q("t", RandomPredicate(rng, 2));
  if (rng.NextBool(0.5)) {
    const char* const sortable[] = {"a", "b", "s", "nested.x", "tags"};
    q.SetOrderBy({{sortable[rng.NextUint64(5)], rng.NextBool(0.5)}});
  }
  if (rng.NextBool(0.5)) {
    q.SetLimit(static_cast<int64_t>(rng.NextUint64(8)));
  }
  if (rng.NextBool(0.3)) {
    q.SetOffset(static_cast<int64_t>(rng.NextUint64(5)));
  }
  return q;
}

TEST(MatchingEquivalenceTest, IndexedTableExecutesIdenticallyToScan) {
  Rng rng(0xD0C5);
  db::Table indexed("t");
  db::Table plain("t");
  for (const char* path : {"a", "b", "s", "tags", "nested.x"}) {
    indexed.CreateIndex(path);
  }

  uint64_t compared = 0, nonempty = 0;
  for (int round = 0; round < 400; ++round) {
    const std::string id = "r" + std::to_string(rng.NextUint64(30));
    const uint64_t roll = rng.NextUint64(10);
    if (roll < 6) {
      Value body = RandomDoc(rng);
      (void)indexed.Upsert(id, body, round);
      (void)plain.Upsert(id, std::move(body), round);
    } else if (roll < 8) {
      (void)indexed.Delete(id, round);
      (void)plain.Delete(id, round);
    } else {
      const Query q = RandomTableQuery(rng);
      const std::vector<Document> a = indexed.Execute(q);
      const std::vector<Document> b = plain.Execute(q);
      ASSERT_EQ(a.size(), b.size()) << "round " << round << " query "
                                    << q.NormalizedKey();
      for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].id, b[i].id)
            << "round " << round << " pos " << i << " query "
            << q.NormalizedKey();
        ASSERT_EQ(a[i].version, b[i].version);
        ASSERT_EQ(a[i].body.ToJson(), b[i].body.ToJson());
      }
      ++compared;
      if (!a.empty()) ++nonempty;
    }
  }
  EXPECT_GT(compared, 40u);
  EXPECT_GT(nonempty, 10u);          // anti-vacuity
  EXPECT_EQ(plain.index_lookups(), 0u);
  EXPECT_GT(indexed.index_lookups(), 0u);  // index plans actually ran
  EXPECT_GT(indexed.index_stats().range_scans, 0u);
  EXPECT_GT(indexed.index_stats().eq_lookups, 0u);
}

// The random-doc workload above never qualifies for the top-k plan (it
// requires every live doc to carry exactly one scalar at the sort path),
// so exercise that plan's equivalence — including id tie-breaks inside
// equal-key buckets and offset windows — with a dedicated shape.
TEST(MatchingEquivalenceTest, TopKPlanExecutesIdenticallyToScan) {
  Rng rng(0x70CC);
  db::Table indexed("t");
  db::Table plain("t");
  indexed.CreateIndex("n");
  for (int i = 0; i < 60; ++i) {
    Object body;
    body["n"] = Value(static_cast<int64_t>(rng.NextUint64(10)));  // ties
    body["g"] = Value(static_cast<int64_t>(i % 4));
    const std::string id = "r" + std::to_string(i);
    ASSERT_TRUE(indexed.Insert(id, Value(body), 1).ok());
    ASSERT_TRUE(plain.Insert(id, Value(body), 1).ok());
  }

  for (int round = 0; round < 120; ++round) {
    Query q("t", rng.NextBool(0.5)
                     ? Predicate::Compare(
                           "g", CompareOp::kEq,
                           Value(static_cast<int64_t>(rng.NextUint64(4))))
                     : Predicate::True());
    q.SetOrderBy({{"n", rng.NextBool(0.5)}});
    q.SetLimit(static_cast<int64_t>(rng.NextUint64(12)));
    if (rng.NextBool(0.5)) {
      q.SetOffset(static_cast<int64_t>(rng.NextUint64(6)));
    }
    const std::vector<Document> a = indexed.Execute(q);
    const std::vector<Document> b = plain.Execute(q);
    ASSERT_EQ(a.size(), b.size()) << q.NormalizedKey();
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].id, b[i].id)
          << "pos " << i << " query " << q.NormalizedKey();
    }
  }
  EXPECT_GT(indexed.index_stats().order_scans, 0u);
  EXPECT_EQ(plain.index_lookups(), 0u);
}

// ---------------------------------------------------------------------------
// Write-path batching: batched ingest == the per-event pipeline
// ---------------------------------------------------------------------------

// Canonical signature for byte-for-byte multiset comparison (event_time
// zero-padded so a lexicographic sort groups by change event; within one
// event the emission order legitimately depends on which column a query
// hashes to, so runs compare as sorted multisets — equality means the
// batch boundary changed nothing about matching output).
std::string Sig(const Notification& n) {
  char time_buf[21];
  std::snprintf(time_buf, sizeof(time_buf), "%020lld",
                static_cast<long long>(n.event_time));
  return std::string(time_buf) + "|" + n.query_key + "|" + n.record_id +
         "|" + std::to_string(static_cast<int>(n.type)) + "|" +
         std::to_string(n.new_index);
}

/// One seeded workload: stateless random-predicate queries (a complete
/// oracle needs no sorted-layer ordering; the order-sensitive stateful
/// case gets its own single-row test below), consistent initial results,
/// and a commit-ordered change stream over a shared record pool.
struct BatchWorkload {
  std::vector<Query> queries;
  std::vector<std::vector<Document>> initial;
  std::vector<ChangeEvent> stream;
};

BatchWorkload MakeBatchWorkload(uint64_t seed, int num_queries,
                                int num_records, int num_events) {
  Rng rng(seed * 0x9e3779b9u + 0xba7c4);
  BatchWorkload w;
  std::map<std::string, Value> live;
  for (int i = 0; i < num_records; ++i) {
    live["r" + std::to_string(i)] = RandomDoc(rng);
  }
  std::map<std::string, bool> seen;  // the cluster keys by NormalizedKey
  for (int i = 0; i < num_queries; ++i) {
    Query q("t", RandomPredicate(rng, 2));
    if (!seen.emplace(q.NormalizedKey(), true).second) continue;
    std::vector<Document> initial;
    for (const auto& [id, body] : live) {
      if (q.Matches(body)) {
        Document doc;
        doc.table = "t";
        doc.id = id;
        doc.body = body;
        initial.push_back(doc);
      }
    }
    w.queries.push_back(std::move(q));
    w.initial.push_back(std::move(initial));
  }
  for (int round = 0; round < num_events; ++round) {
    const std::string id =
        "r" + std::to_string(rng.NextUint64(num_records));
    ChangeEvent ev;
    ev.commit_time = (round + 1) * kMicrosPerMilli;
    ev.after.table = "t";
    ev.after.id = id;
    ev.after.version = static_cast<uint64_t>(round) + 2;
    ev.after.write_time = ev.commit_time;
    const auto it = live.find(id);
    if (it != live.end() && rng.NextBool(0.2)) {
      ev.kind = WriteKind::kDelete;
      ev.after.deleted = true;
      ev.after.body = it->second;
      live.erase(it);
    } else {
      ev.kind = it == live.end() ? WriteKind::kInsert : WriteKind::kUpdate;
      ev.after.body = RandomDoc(rng);
      live[id] = ev.after.body;
    }
    w.stream.push_back(std::move(ev));
  }
  return w;
}

/// Feeds the stream in `batch`-sized slices through OnChangeBatch
/// (batch == 1 is the per-event reference path) and returns the sorted
/// notification multiset. `resize_at` >= 0 repartitions the live cluster
/// to 3x2 at the first batch boundary past that event index — zero
/// loss/duplication is the Resize() contract, so the exact boundary may
/// differ between batch sizes without changing the multiset.
std::vector<std::string> RunBatchedCluster(const BatchWorkload& w,
                                           size_t batch, int resize_at,
                                           ClusterStats* stats_out) {
  SimulatedClock clock(0);
  std::vector<std::string> sigs;
  InvalidbOptions opts;
  opts.query_partitions = 2;
  opts.object_partitions = 2;
  opts.batched_matching = batch > 1;
  InvalidbCluster cluster(&clock, opts, [&](const Notification& n) {
    sigs.push_back(Sig(n));
  });
  for (size_t i = 0; i < w.queries.size(); ++i) {
    EXPECT_TRUE(
        cluster.RegisterQuery(w.queries[i], w.initial[i], kEventsAll).ok());
  }
  bool resized = false;
  for (size_t i = 0; i < w.stream.size(); i += batch) {
    if (resize_at >= 0 && !resized && i >= static_cast<size_t>(resize_at)) {
      cluster.Resize(3, 2);
      resized = true;
    }
    const size_t end = std::min(i + batch, w.stream.size());
    if (batch == 1) {
      cluster.OnChange(w.stream[i]);
    } else {
      cluster.OnChangeBatch(std::vector<ChangeEvent>(
          w.stream.begin() + i, w.stream.begin() + end));
    }
  }
  if (stats_out != nullptr) *stats_out = cluster.stats();
  std::sort(sigs.begin(), sigs.end());
  return sigs;
}

TEST(MatchingEquivalenceTest, BatchedClusterByteIdenticalAcross20Seeds) {
  constexpr int kEvents = 160;
  size_t nonvacuous = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const BatchWorkload w = MakeBatchWorkload(seed, /*num_queries=*/40,
                                              /*num_records=*/24, kEvents);
    const std::vector<std::string> expected =
        RunBatchedCluster(w, /*batch=*/1, /*resize_at=*/-1, nullptr);
    if (expected.size() > kEvents) ++nonvacuous;
    for (const size_t batch : {size_t{7}, size_t{64}}) {
      ClusterStats stats;
      EXPECT_EQ(RunBatchedCluster(w, batch, /*resize_at=*/-1, &stats),
                expected)
          << "seed " << seed << " batch " << batch;
      // The batched path actually ran (not silently unbatched).
      EXPECT_GT(stats.change_batches, 0u) << "seed " << seed;
      EXPECT_EQ(stats.batch_events, static_cast<uint64_t>(kEvents))
          << "seed " << seed;
    }
    // Mid-stream resize: the repartition lands between two batches of the
    // batched run and between two events of the reference — the multiset
    // must not notice either way.
    const std::vector<std::string> expected_rz =
        RunBatchedCluster(w, /*batch=*/1, /*resize_at=*/kEvents / 2, nullptr);
    EXPECT_EQ(expected_rz, expected) << "seed " << seed;
    EXPECT_EQ(
        RunBatchedCluster(w, /*batch=*/64, /*resize_at=*/kEvents / 2, nullptr),
        expected)
        << "seed " << seed;
  }
  // Anti-vacuity: most seeds must emit more notifications than events.
  EXPECT_GT(nonvacuous, 15u);
}

// The sweep above is stateless by design: a batch is row-grouped, so
// cross-row commit interleaving — which the per-record ordering contract
// never promised — can reach the (order-sensitive) sorted layer in a
// different order. With a single object partition the grouping is the
// identity and the full stateful pipeline must be byte-identical,
// new_index and changeIndex moves included.
TEST(MatchingEquivalenceTest, BatchedSortedLayerSingleRowByteIdentical) {
  Rng rng(0x50fa);
  BatchWorkload w;
  Query top("t", db::Predicate::Compare("score", CompareOp::kGte,
                                        Value(int64_t{0})));
  top.SetOrderBy({{"score", false}}).SetLimit(3);
  w.queries.push_back(std::move(top));
  w.initial.emplace_back();
  for (int round = 0; round < 200; ++round) {
    ChangeEvent ev;
    ev.commit_time = (round + 1) * kMicrosPerMilli;
    ev.after.table = "t";
    ev.after.id = "r" + std::to_string(rng.NextUint64(10));
    ev.after.version = static_cast<uint64_t>(round) + 2;
    ev.after.write_time = ev.commit_time;
    ev.kind = WriteKind::kUpdate;
    Object body;
    body["score"] = Value(static_cast<int64_t>(rng.NextUint64(100)));
    ev.after.body = Value(std::move(body));
    w.stream.push_back(std::move(ev));
  }

  const auto run = [&](size_t batch) {
    SimulatedClock clock(0);
    std::vector<std::string> sigs;
    size_t index_moves = 0;
    InvalidbOptions opts;
    opts.query_partitions = 2;
    opts.object_partitions = 1;  // one row: batches keep global order
    opts.batched_matching = batch > 1;
    InvalidbCluster cluster(&clock, opts, [&](const Notification& n) {
      sigs.push_back(Sig(n));
      if (n.type == NotificationType::kChangeIndex) ++index_moves;
    });
    EXPECT_TRUE(
        cluster.RegisterQuery(w.queries[0], w.initial[0], kEventsAll).ok());
    for (size_t i = 0; i < w.stream.size(); i += batch) {
      const size_t end = std::min(i + batch, w.stream.size());
      if (batch == 1) {
        cluster.OnChange(w.stream[i]);
      } else {
        cluster.OnChangeBatch(std::vector<ChangeEvent>(
            w.stream.begin() + i, w.stream.begin() + end));
      }
    }
    EXPECT_GT(index_moves, 10u);  // the window actually reshuffled
    return sigs;  // NOT sorted: single row, order must match exactly
  };

  const std::vector<std::string> expected = run(1);
  ASSERT_GT(expected.size(), 100u);
  EXPECT_EQ(run(16), expected);
  EXPECT_EQ(run(64), expected);
}

// ---------------------------------------------------------------------------
// Write-path batching over a lossy, duplicating, reordering transport
// ---------------------------------------------------------------------------

/// Ships the workload through a remote/worker pair over `kv` with
/// batching at `batch` (1 = batching off), pumping until the pipeline
/// drains. Returns the sorted notification multiset as seen by the
/// remote's sink — i.e. after batch encode, the reliable layer, the
/// faulty channel, and batch decode.
std::vector<std::string> RunBatchedTransport(const BatchWorkload& w,
                                             size_t batch, SimulatedClock* clock,
                                             kv::KvStore* kv,
                                             fault::FaultyKvStore* faulty) {
  TransportOptions topts;
  topts.reliable.enabled = true;
  topts.reliable.seed = 0xba7c ^ batch;
  topts.batching.enabled = batch > 1;
  topts.batching.max_batch = batch;
  std::vector<std::string> sigs;
  InvalidbOptions copts;
  copts.query_partitions = 2;
  copts.object_partitions = 2;
  copts.batched_matching = batch > 1;
  InvalidbRemote remote(
      clock, kv, "bt",
      [&](const Notification& n) { sigs.push_back(Sig(n)); }, topts);
  InvalidbWorker worker(clock, kv, "bt", copts, topts);

  for (size_t i = 0; i < w.queries.size(); ++i) {
    remote.RegisterQuery(w.queries[i], w.initial[i], kEventsAll);
  }
  for (const ChangeEvent& ev : w.stream) remote.OnChange(ev);
  remote.FlushChanges();

  for (int round = 0; round < 400; ++round) {
    worker.ProcessPending();
    remote.DrainNotifications();
    clock->Advance(150 * kMicrosPerMilli);
    worker.Tick();
    remote.Tick();
    const bool drained =
        remote.unacked_requests() == 0 &&
        remote.pending_notifications() == 0 &&
        remote.buffered_changes() == 0 &&
        kv->QueueLen("bt:requests") == 0 &&
        kv->QueueLen("bt:notifications") == 0 &&
        (faulty == nullptr || faulty->held_count() == 0);
    if (drained && round > 4) break;
  }
  if (batch > 1) {
    // The batched framing was actually on the wire.
    EXPECT_GT(remote.stats().batches_sent, 0u);
    EXPECT_GT(worker.stats().batches_sent, 0u);
  }
  EXPECT_EQ(remote.decode_errors(), 0u);
  EXPECT_EQ(worker.decode_errors(), 0u);
  std::sort(sigs.begin(), sigs.end());
  return sigs;
}

TEST(MatchingEquivalenceTest, BatchedTransportByteIdenticalAcross20Seeds) {
  constexpr int kEvents = 48;
  fault::FaultProfile profile;
  profile.drop_rate = 0.10;
  profile.duplicate_rate = 0.10;
  profile.reorder_rate = 0.10;
  uint64_t total_dropped = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const BatchWorkload w = MakeBatchWorkload(seed, /*num_queries=*/30,
                                              /*num_records=*/16, kEvents);

    // Reference: batching off, perfect channel.
    SimulatedClock ref_clock(0);
    kv::KvStore ref_kv(&ref_clock);
    const std::vector<std::string> expected =
        RunBatchedTransport(w, /*batch=*/1, &ref_clock, &ref_kv, nullptr);
    ASSERT_GT(expected.size(), 10u) << "seed " << seed;

    // Every batch size must survive a 10% drop/dup/reorder channel with
    // the exact multiset: the reliable layer guards whole envelopes, so a
    // redelivered batch must dedup as one unit, never half-apply.
    for (const size_t batch : {size_t{1}, size_t{7}, size_t{64}}) {
      SimulatedClock clock(0);
      fault::FaultInjector injector(seed * 6151 + 7 * batch, profile);
      fault::FaultyKvStore faulty(&clock, &injector);
      EXPECT_EQ(RunBatchedTransport(w, batch, &clock, &faulty, &faulty),
                expected)
          << "seed " << seed << " batch " << batch;
      total_dropped += injector.stats().dropped;
    }
  }
  // The sweep actually exercised the faults it claims to survive.
  EXPECT_GT(total_dropped, 50u);
}

}  // namespace
}  // namespace quaestor::invalidb
