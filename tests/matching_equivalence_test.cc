// Property test: predicate-indexed matching is observationally equivalent
// to brute force. Two MatchingNodes — one indexed, one brute-force — get
// the same queries, the same initial result ids, and the same randomized
// change stream; they must emit identical notification sequences (the
// index may only prune queries whose outcome is provably "no event").
// A second property does the same for Table::Execute: an indexed table
// and an index-free table answering the same randomized queries over the
// same data must return byte-identical results.
#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"
#include "db/query.h"
#include "db/table.h"
#include "db/value.h"
#include "invalidb/cluster.h"
#include "invalidb/matching_node.h"

namespace quaestor::invalidb {
namespace {

using db::Array;
using db::ChangeEvent;
using db::CompareOp;
using db::Document;
using db::Object;
using db::Predicate;
using db::Query;
using db::Value;
using db::WriteKind;

const char* const kStrings[] = {"alpha", "alps",  "beta", "bet",
                                "gamma", "gam",   "",     "delta"};
const char* const kPaths[] = {"a", "b", "s", "tags", "nested.x",
                              "nested.y", "tags.0", "missing"};

Value RandomScalar(Rng& rng) {
  switch (rng.NextUint64(5)) {
    case 0:
      return Value(nullptr);
    case 1:
      return Value(rng.NextBool(0.5));
    case 2:
      return Value(static_cast<int64_t>(rng.NextUint64(6)));
    case 3:
      return Value(static_cast<double>(rng.NextUint64(6)) / 2.0);
    default:
      return Value(kStrings[rng.NextUint64(8)]);
  }
}

Value RandomDoc(Rng& rng) {
  Object doc;
  if (rng.NextBool(0.9)) doc["a"] = RandomScalar(rng);
  if (rng.NextBool(0.8)) doc["b"] = RandomScalar(rng);
  if (rng.NextBool(0.8)) doc["s"] = Value(kStrings[rng.NextUint64(8)]);
  if (rng.NextBool(0.7)) {
    Array tags;
    const size_t n = rng.NextUint64(4);
    for (size_t i = 0; i < n; ++i) tags.push_back(RandomScalar(rng));
    doc["tags"] = Value(std::move(tags));
  }
  if (rng.NextBool(0.6)) {
    Object nested;
    if (rng.NextBool(0.8)) nested["x"] = RandomScalar(rng);
    if (rng.NextBool(0.5)) nested["y"] = RandomScalar(rng);
    doc["nested"] = Value(std::move(nested));
  }
  return Value(std::move(doc));
}

/// Random predicates spanning every operator the query language has —
/// indexable conjuncts (eq / in / ranges / prefix), residual leaves
/// ($ne, $nin, $contains, $exists), and boolean combinators. The point
/// is to stress BOTH sides of the query index's indexable/residual split.
Predicate RandomPredicate(Rng& rng, int depth) {
  const uint64_t roll = rng.NextUint64(depth > 0 ? 10 : 7);
  if (roll < 7) {
    const std::string path = kPaths[rng.NextUint64(8)];
    const CompareOp ops[] = {
        CompareOp::kEq,  CompareOp::kNe,       CompareOp::kGt,
        CompareOp::kGte, CompareOp::kLt,       CompareOp::kLte,
        CompareOp::kIn,  CompareOp::kNin,      CompareOp::kContains,
        CompareOp::kExists, CompareOp::kPrefix};
    const CompareOp op = ops[rng.NextUint64(11)];
    Value operand;
    if (op == CompareOp::kIn || op == CompareOp::kNin) {
      Array elems;
      const size_t n = 1 + rng.NextUint64(3);
      for (size_t i = 0; i < n; ++i) elems.push_back(RandomScalar(rng));
      operand = Value(std::move(elems));
    } else if (op == CompareOp::kExists) {
      operand = Value(rng.NextBool(0.5));
    } else {
      operand = RandomScalar(rng);
    }
    return Predicate::Compare(path, op, operand);
  }
  if (roll < 8) {  // NOT
    return Predicate::Not(RandomPredicate(rng, depth - 1));
  }
  std::vector<Predicate> children;
  const size_t n = 2 + rng.NextUint64(2);
  for (size_t i = 0; i < n; ++i) {
    children.push_back(RandomPredicate(rng, depth - 1));
  }
  return roll < 9 ? Predicate::And(std::move(children))
                  : Predicate::Or(std::move(children));
}

bool NotificationLess(const Notification& x, const Notification& y) {
  if (x.query_key != y.query_key) return x.query_key < y.query_key;
  if (x.record_id != y.record_id) return x.record_id < y.record_id;
  return x.type < y.type;
}

// ---------------------------------------------------------------------------
// MatchingNode: indexed vs brute force
// ---------------------------------------------------------------------------

TEST(MatchingEquivalenceTest, IndexedNodeEmitsExactlyBruteForceEvents) {
  Rng rng(0x5EED2026);
  constexpr int kQueries = 120;
  constexpr int kRecords = 40;
  constexpr int kEvents = 600;

  // Initial record pool; queries are installed with consistent initial
  // result ids so remove events are reachable from the very first change.
  std::map<std::string, Value> live;
  for (int i = 0; i < kRecords; ++i) {
    live["r" + std::to_string(i)] = RandomDoc(rng);
  }

  MatchingNode indexed(/*use_index=*/true);
  MatchingNode brute(/*use_index=*/false);
  size_t installed = 0;
  for (int i = 0; i < kQueries; ++i) {
    Query q("t", RandomPredicate(rng, 2));
    // Key by index so duplicate predicates stay distinct installations.
    const std::string key = std::to_string(i) + ":" + q.NormalizedKey();
    std::vector<std::string> ids;
    for (const auto& [id, body] : live) {
      if (q.Matches(body)) ids.push_back(id);
    }
    indexed.AddQuery(q, key, ids);
    brute.AddQuery(q, key, std::move(ids));
    ++installed;
  }
  ASSERT_EQ(indexed.QueryCount(), installed);
  // The generator must produce both indexable and residual queries, or
  // the equivalence property is vacuous on one side of the split.
  ASSERT_GT(indexed.ResidualQueryCount(), 0u);
  ASSERT_LT(indexed.ResidualQueryCount(), installed);

  std::vector<Notification> got, want;
  size_t total_events = 0, adds = 0, removes = 0, changes = 0;
  for (int round = 0; round < kEvents; ++round) {
    const std::string id = "r" + std::to_string(rng.NextUint64(kRecords));
    ChangeEvent ev;
    ev.commit_time = round;
    ev.after.table = "t";
    ev.after.id = id;
    ev.after.version = static_cast<uint64_t>(round) + 2;
    const auto it = live.find(id);
    if (it != live.end() && rng.NextBool(0.2)) {
      ev.kind = WriteKind::kDelete;
      ev.after.deleted = true;
      ev.after.body = it->second;  // last pre-delete body
      live.erase(it);
    } else {
      ev.kind = it == live.end() ? WriteKind::kInsert : WriteKind::kUpdate;
      ev.after.body = RandomDoc(rng);
      live[id] = ev.after.body;
    }

    got.clear();
    want.clear();
    const MatchingNode::MatchStats ms = indexed.Match(ev, &got);
    brute.Match(ev, &want);
    EXPECT_EQ(ms.installed, installed);
    EXPECT_LE(ms.checked, installed);
    // Every emitted notification implies the query was a candidate.
    EXPECT_LE(got.size(), ms.checked);

    std::sort(got.begin(), got.end(), NotificationLess);
    std::sort(want.begin(), want.end(), NotificationLess);
    ASSERT_EQ(got.size(), want.size())
        << "event " << round << " id " << id << " body "
        << ev.after.body.ToJson();
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].query_key, want[i].query_key) << "event " << round;
      ASSERT_EQ(got[i].record_id, want[i].record_id) << "event " << round;
      ASSERT_EQ(got[i].type, want[i].type)
          << "event " << round << " query " << got[i].query_key;
      ASSERT_EQ(got[i].event_time, want[i].event_time);
      switch (got[i].type) {
        case NotificationType::kAdd: ++adds; break;
        case NotificationType::kRemove: ++removes; break;
        default: ++changes; break;
      }
    }
    total_events += got.size();
  }

  // Anti-vacuity: the stream must exercise every membership transition.
  EXPECT_GT(adds, 100u);
  EXPECT_GT(removes, 100u);
  EXPECT_GT(changes, 100u);
  EXPECT_GT(total_events, 0u);
  // And the index must have actually pruned work, not merely matched it.
  // (The generator is deliberately residual-heavy, so the margin is small
  // here; the selective-workload speedup is measured by the benchmark.)
  EXPECT_LT(indexed.match_checks(), indexed.match_checks_naive());
  EXPECT_EQ(brute.match_checks(), brute.match_checks_naive());
}

// ---------------------------------------------------------------------------
// Cluster with a live Resize() mid-stream vs brute force
// ---------------------------------------------------------------------------

// A cluster that repartitions halfway through a randomized update stream
// must emit exactly the notifications a single brute-force MatchingNode
// emits for the same stream — the Resize() zero-loss/zero-duplication
// contract checked against the simplest possible oracle.
TEST(MatchingEquivalenceTest, ClusterResizeMidUpdatesMatchesBruteForce) {
  Rng rng(0xE1A57);
  constexpr int kQueries = 60;
  constexpr int kRecords = 30;
  constexpr int kEvents = 400;

  std::map<std::string, Value> live;
  for (int i = 0; i < kRecords; ++i) {
    live["r" + std::to_string(i)] = RandomDoc(rng);
  }

  SimulatedClock clock(0);
  std::vector<Notification> got;
  InvalidbOptions opts;
  opts.query_partitions = 2;
  opts.object_partitions = 2;
  InvalidbCluster cluster(&clock, opts, [&](const Notification& n) {
    got.push_back(n);
  });
  MatchingNode brute(/*use_index=*/false);

  // Stateless queries only: the sorted layer is covered by
  // rebalance_test; here the brute node must be a complete oracle. The
  // cluster keys by NormalizedKey, so duplicate predicates are skipped on
  // both sides.
  size_t installed = 0;
  for (int i = 0; i < kQueries && installed < 40; ++i) {
    Query q("t", RandomPredicate(rng, 2));
    std::vector<Document> initial;
    std::vector<std::string> ids;
    for (const auto& [id, body] : live) {
      if (q.Matches(body)) {
        Document doc;
        doc.table = "t";
        doc.id = id;
        doc.body = body;
        initial.push_back(doc);
        ids.push_back(id);
      }
    }
    if (!cluster.RegisterQuery(q, initial, kEventsAll).ok()) continue;
    brute.AddQuery(q, q.NormalizedKey(), std::move(ids));
    ++installed;
  }
  ASSERT_GT(installed, 20u);

  std::vector<Notification> want;
  size_t events_before_resize = 0;
  for (int round = 0; round < kEvents; ++round) {
    if (round == kEvents / 2) {
      events_before_resize = got.size();
      // Handoff path: the healthy grid carries its matching state over.
      ASSERT_EQ(cluster.Resize(3, 2), installed);
    }
    clock.Advance(kMicrosPerMilli);
    const std::string id = "r" + std::to_string(rng.NextUint64(kRecords));
    ChangeEvent ev;
    ev.commit_time = clock.NowMicros();
    ev.after.table = "t";
    ev.after.id = id;
    ev.after.version = static_cast<uint64_t>(round) + 2;
    const auto it = live.find(id);
    if (it != live.end() && rng.NextBool(0.2)) {
      ev.kind = WriteKind::kDelete;
      ev.after.deleted = true;
      ev.after.body = it->second;
      live.erase(it);
    } else {
      ev.kind = it == live.end() ? WriteKind::kInsert : WriteKind::kUpdate;
      ev.after.body = RandomDoc(rng);
      live[id] = ev.after.body;
    }
    cluster.OnChange(ev);
    brute.Match(ev, &want);
  }

  const auto by_all = [](const Notification& x, const Notification& y) {
    if (x.event_time != y.event_time) return x.event_time < y.event_time;
    return NotificationLess(x, y);
  };
  std::sort(got.begin(), got.end(), by_all);
  std::sort(want.begin(), want.end(), by_all);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].query_key, want[i].query_key) << "pos " << i;
    ASSERT_EQ(got[i].record_id, want[i].record_id) << "pos " << i;
    ASSERT_EQ(got[i].type, want[i].type) << "pos " << i;
    ASSERT_EQ(got[i].event_time, want[i].event_time) << "pos " << i;
  }
  // Anti-vacuity: the stream produced notifications on both sides of the
  // repartition, and the resize actually ran.
  EXPECT_GT(events_before_resize, 50u);
  EXPECT_GT(got.size(), events_before_resize + 50u);
  EXPECT_EQ(cluster.stats().rebalance_resizes, 1u);
  EXPECT_EQ(cluster.NumNodes(), 6u);
}

// ---------------------------------------------------------------------------
// Table::Execute: indexed vs scan
// ---------------------------------------------------------------------------

Query RandomTableQuery(Rng& rng) {
  Query q("t", RandomPredicate(rng, 2));
  if (rng.NextBool(0.5)) {
    const char* const sortable[] = {"a", "b", "s", "nested.x", "tags"};
    q.SetOrderBy({{sortable[rng.NextUint64(5)], rng.NextBool(0.5)}});
  }
  if (rng.NextBool(0.5)) {
    q.SetLimit(static_cast<int64_t>(rng.NextUint64(8)));
  }
  if (rng.NextBool(0.3)) {
    q.SetOffset(static_cast<int64_t>(rng.NextUint64(5)));
  }
  return q;
}

TEST(MatchingEquivalenceTest, IndexedTableExecutesIdenticallyToScan) {
  Rng rng(0xD0C5);
  db::Table indexed("t");
  db::Table plain("t");
  for (const char* path : {"a", "b", "s", "tags", "nested.x"}) {
    indexed.CreateIndex(path);
  }

  uint64_t compared = 0, nonempty = 0;
  for (int round = 0; round < 400; ++round) {
    const std::string id = "r" + std::to_string(rng.NextUint64(30));
    const uint64_t roll = rng.NextUint64(10);
    if (roll < 6) {
      Value body = RandomDoc(rng);
      (void)indexed.Upsert(id, body, round);
      (void)plain.Upsert(id, std::move(body), round);
    } else if (roll < 8) {
      (void)indexed.Delete(id, round);
      (void)plain.Delete(id, round);
    } else {
      const Query q = RandomTableQuery(rng);
      const std::vector<Document> a = indexed.Execute(q);
      const std::vector<Document> b = plain.Execute(q);
      ASSERT_EQ(a.size(), b.size()) << "round " << round << " query "
                                    << q.NormalizedKey();
      for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].id, b[i].id)
            << "round " << round << " pos " << i << " query "
            << q.NormalizedKey();
        ASSERT_EQ(a[i].version, b[i].version);
        ASSERT_EQ(a[i].body.ToJson(), b[i].body.ToJson());
      }
      ++compared;
      if (!a.empty()) ++nonempty;
    }
  }
  EXPECT_GT(compared, 40u);
  EXPECT_GT(nonempty, 10u);          // anti-vacuity
  EXPECT_EQ(plain.index_lookups(), 0u);
  EXPECT_GT(indexed.index_lookups(), 0u);  // index plans actually ran
  EXPECT_GT(indexed.index_stats().range_scans, 0u);
  EXPECT_GT(indexed.index_stats().eq_lookups, 0u);
}

// The random-doc workload above never qualifies for the top-k plan (it
// requires every live doc to carry exactly one scalar at the sort path),
// so exercise that plan's equivalence — including id tie-breaks inside
// equal-key buckets and offset windows — with a dedicated shape.
TEST(MatchingEquivalenceTest, TopKPlanExecutesIdenticallyToScan) {
  Rng rng(0x70CC);
  db::Table indexed("t");
  db::Table plain("t");
  indexed.CreateIndex("n");
  for (int i = 0; i < 60; ++i) {
    Object body;
    body["n"] = Value(static_cast<int64_t>(rng.NextUint64(10)));  // ties
    body["g"] = Value(static_cast<int64_t>(i % 4));
    const std::string id = "r" + std::to_string(i);
    ASSERT_TRUE(indexed.Insert(id, Value(body), 1).ok());
    ASSERT_TRUE(plain.Insert(id, Value(body), 1).ok());
  }

  for (int round = 0; round < 120; ++round) {
    Query q("t", rng.NextBool(0.5)
                     ? Predicate::Compare(
                           "g", CompareOp::kEq,
                           Value(static_cast<int64_t>(rng.NextUint64(4))))
                     : Predicate::True());
    q.SetOrderBy({{"n", rng.NextBool(0.5)}});
    q.SetLimit(static_cast<int64_t>(rng.NextUint64(12)));
    if (rng.NextBool(0.5)) {
      q.SetOffset(static_cast<int64_t>(rng.NextUint64(6)));
    }
    const std::vector<Document> a = indexed.Execute(q);
    const std::vector<Document> b = plain.Execute(q);
    ASSERT_EQ(a.size(), b.size()) << q.NormalizedKey();
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].id, b[i].id)
          << "pos " << i << " query " << q.NormalizedKey();
    }
  }
  EXPECT_GT(indexed.index_stats().order_scans, 0u);
  EXPECT_EQ(plain.index_lookups(), 0u);
}

}  // namespace
}  // namespace quaestor::invalidb
