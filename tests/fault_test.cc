// Fault-injection building blocks: the seeded injector, the lossy KV
// decorator, the at-least-once reliable queue layer, client retry, and
// server degradation plumbing.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "client/client.h"
#include "common/clock.h"
#include "core/server.h"
#include "db/database.h"
#include "fault/fault_injector.h"
#include "fault/faulty_kv_store.h"
#include "invalidb/reliable_queue.h"
#include "kv/kv_store.h"
#include "webcache/web_cache.h"

namespace quaestor {
namespace {

db::Value Doc(const char* json) {
  auto v = db::Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, DeterministicFromSeed) {
  fault::FaultProfile p;
  p.drop_rate = 0.3;
  p.duplicate_rate = 0.2;
  p.corrupt_rate = 0.5;
  p.delay_rate = 0.4;
  p.max_delay = 1000;
  fault::FaultInjector a(0xfeed, p);
  fault::FaultInjector b(0xfeed, p);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.ShouldDrop(), b.ShouldDrop());
    EXPECT_EQ(a.ShouldDuplicate(), b.ShouldDuplicate());
    EXPECT_EQ(a.ShouldCorrupt(), b.ShouldCorrupt());
    EXPECT_EQ(a.DelayFor(), b.DelayFor());
    std::string ma = "the quick brown fox";
    std::string mb = ma;
    a.Corrupt(&ma);
    b.Corrupt(&mb);
    EXPECT_EQ(ma, mb);
  }
}

TEST(FaultInjectorTest, RatesRoughlyRespected) {
  fault::FaultProfile p;
  p.drop_rate = 0.25;
  fault::FaultInjector inj(7, p);
  int drops = 0;
  for (int i = 0; i < 4000; ++i) {
    if (inj.ShouldDrop()) drops++;
  }
  EXPECT_GT(drops, 4000 * 0.15);
  EXPECT_LT(drops, 4000 * 0.35);
  EXPECT_EQ(inj.stats().dropped, static_cast<uint64_t>(drops));
}

TEST(FaultInjectorTest, CorruptAlwaysMutatesOrTruncates) {
  fault::FaultProfile p;
  p.corrupt_rate = 1.0;
  fault::FaultInjector inj(3, p);
  for (int i = 0; i < 200; ++i) {
    const std::string original = R"({"op":"change","k":"v12345"})";
    std::string m = original;
    inj.Corrupt(&m);
    EXPECT_NE(m, original);
  }
  // Empty messages don't crash the corruptor.
  std::string empty;
  inj.Corrupt(&empty);
  EXPECT_FALSE(empty.empty());
}

// ---------------------------------------------------------------------------
// FaultyKvStore
// ---------------------------------------------------------------------------

class FaultyKvTest : public ::testing::Test {
 protected:
  FaultyKvTest() : clock_(0), injector_(1), kv_(&clock_, &injector_) {}

  void SetProfile(const fault::FaultProfile& p) { injector_.set_profile(p); }

  SimulatedClock clock_;
  fault::FaultInjector injector_;
  fault::FaultyKvStore kv_;
};

TEST_F(FaultyKvTest, LosslessProfilePassesThrough) {
  kv_.QueuePush("q", "a");
  kv_.QueuePush("q", "b");
  EXPECT_EQ(kv_.QueueLen("q"), 2u);
  EXPECT_EQ(kv_.QueueTryPop("q").value(), "a");
  EXPECT_EQ(kv_.QueueTryPop("q").value(), "b");
  EXPECT_FALSE(kv_.QueueTryPop("q").has_value());
}

TEST_F(FaultyKvTest, DropRateOneLosesEverything) {
  fault::FaultProfile p;
  p.drop_rate = 1.0;
  SetProfile(p);
  kv_.QueuePush("q", "gone");
  EXPECT_EQ(kv_.QueueLen("q"), 0u);
  EXPECT_FALSE(kv_.QueueTryPop("q").has_value());
  EXPECT_EQ(injector_.stats().dropped, 1u);
}

TEST_F(FaultyKvTest, DuplicateRateOneDeliversTwice) {
  fault::FaultProfile p;
  p.duplicate_rate = 1.0;
  SetProfile(p);
  kv_.QueuePush("q", "twin");
  EXPECT_EQ(kv_.QueueLen("q"), 2u);
  EXPECT_EQ(kv_.QueueTryPop("q").value(), "twin");
  EXPECT_EQ(kv_.QueueTryPop("q").value(), "twin");
}

TEST_F(FaultyKvTest, DelayedMessageReleasedAfterDue) {
  fault::FaultProfile p;
  p.delay_rate = 1.0;
  p.max_delay = 1000;
  SetProfile(p);
  kv_.QueuePush("q", "late");
  SetProfile(fault::FaultProfile());
  // Held, not yet in the visible queue — but counted in QueueLen.
  EXPECT_EQ(kv_.held_count(), 1u);
  EXPECT_EQ(kv_.QueueLen("q"), 1u);
  EXPECT_FALSE(kv_.QueueTryPop("q").has_value());
  clock_.Advance(1001);
  EXPECT_EQ(kv_.QueueTryPop("q").value(), "late");
  EXPECT_EQ(kv_.held_count(), 0u);
}

TEST_F(FaultyKvTest, ReorderedMessageOvertakenByLaterPushes) {
  fault::FaultProfile p;
  p.reorder_rate = 1.0;
  SetProfile(p);
  kv_.QueuePush("q", "first");
  SetProfile(fault::FaultProfile());
  EXPECT_EQ(kv_.held_count(), 1u);
  // At most 3 subsequent pushes release it, behind at least one of them.
  std::vector<std::string> order;
  for (int i = 0; i < 4; ++i) {
    kv_.QueuePush("q", "later" + std::to_string(i));
  }
  while (auto m = kv_.QueueTryPop("q")) order.push_back(*m);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(kv_.held_count(), 0u);
  // "first" was overtaken: it is not at the front any more.
  EXPECT_NE(order.front(), "first");
  EXPECT_NE(std::find(order.begin(), order.end(), "first"), order.end());
}

TEST_F(FaultyKvTest, FlushHeldReleasesEverything) {
  fault::FaultProfile p;
  p.delay_rate = 1.0;
  p.max_delay = 1000000;
  SetProfile(p);
  kv_.QueuePush("q", "a");
  kv_.QueuePush("q", "b");
  SetProfile(fault::FaultProfile());
  EXPECT_EQ(kv_.held_count(), 2u);
  EXPECT_EQ(kv_.FlushHeld(), 2u);
  EXPECT_EQ(kv_.held_count(), 0u);
  EXPECT_TRUE(kv_.QueueTryPop("q").has_value());
  EXPECT_TRUE(kv_.QueueTryPop("q").has_value());
}

// ---------------------------------------------------------------------------
// Reliable queue layer
// ---------------------------------------------------------------------------

invalidb::ReliableOptions Reliable(uint64_t seed = 9) {
  invalidb::ReliableOptions r;
  r.enabled = true;
  r.seed = seed;
  return r;
}

TEST(ReliableQueueTest, EnvelopeRoundTripAndCorruptionDetected) {
  const std::string wire = invalidb::reliable::Encode("s1", 7, "payload");
  auto env = invalidb::reliable::Decode(wire);
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env->sender, "s1");
  EXPECT_EQ(env->seq, 7u);
  EXPECT_EQ(env->payload, "payload");
  // Raw (non-envelope) messages: NotFound → passthrough.
  EXPECT_TRUE(invalidb::reliable::Decode(R"({"op":"change"})")
                  .status()
                  .IsNotFound());
  // A mutated payload fails the checksum: Corruption, not NotFound.
  std::string mutated = wire;
  const size_t pos = mutated.find("payload");
  ASSERT_NE(pos, std::string::npos);
  mutated[pos] = 'P';
  EXPECT_TRUE(invalidb::reliable::Decode(mutated).status().IsCorruption());
}

TEST(ReliableQueueTest, InOrderDeliveryWithAcks) {
  SimulatedClock clock(0);
  kv::KvStore kv(&clock);
  invalidb::ReliableSender sender(&clock, &kv, "q", "s", Reliable());
  invalidb::ReliableReceiver receiver(&kv, "q", Reliable());
  sender.Send("m1");
  sender.Send("m2");
  sender.Send("m3");
  EXPECT_EQ(sender.unacked(), 3u);
  std::vector<std::string> got;
  receiver.Poll([&](const std::string& p) { got.push_back(p); });
  EXPECT_EQ(got, (std::vector<std::string>{"m1", "m2", "m3"}));
  sender.Tick();  // consume acks
  EXPECT_EQ(sender.unacked(), 0u);
  EXPECT_EQ(sender.redeliveries(), 0u);
}

TEST(ReliableQueueTest, DuplicatesDroppedReordersBuffered) {
  SimulatedClock clock(0);
  kv::KvStore kv(&clock);
  invalidb::ReliableReceiver receiver(&kv, "q", Reliable());
  // Deliver seq 2 before seq 1, then seq 1 twice.
  kv.QueuePush("q", invalidb::reliable::Encode("s", 2, "b"));
  std::vector<std::string> got;
  const auto h = [&](const std::string& p) { got.push_back(p); };
  receiver.Poll(h);
  EXPECT_TRUE(got.empty());  // gap: parked
  EXPECT_EQ(receiver.pending(), 1u);
  kv.QueuePush("q", invalidb::reliable::Encode("s", 1, "a"));
  kv.QueuePush("q", invalidb::reliable::Encode("s", 1, "a"));
  receiver.Poll(h);
  EXPECT_EQ(got, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(receiver.duplicates_dropped(), 1u);
  EXPECT_EQ(receiver.pending(), 0u);
  // Every envelope was acked, duplicates included.
  EXPECT_EQ(kv.QueueLen("q:acks"), 3u);
}

TEST(ReliableQueueTest, LostMessageRetransmittedUntilAcked) {
  SimulatedClock clock(0);
  kv::KvStore kv(&clock);
  invalidb::ReliableOptions opts = Reliable();
  invalidb::ReliableSender sender(&clock, &kv, "q", "s", opts);
  invalidb::ReliableReceiver receiver(&kv, "q", opts);
  sender.Send("precious");
  // The channel eats the message.
  ASSERT_TRUE(kv.QueueTryPop("q").has_value());
  sender.Tick();
  EXPECT_EQ(sender.unacked(), 1u);
  // Past the (jittered) retransmit deadline the sender re-sends.
  clock.Advance(opts.retransmit_timeout * 2);
  sender.Tick();
  EXPECT_GE(sender.redeliveries(), 1u);
  std::vector<std::string> got;
  receiver.Poll([&](const std::string& p) { got.push_back(p); });
  EXPECT_EQ(got, (std::vector<std::string>{"precious"}));
  sender.Tick();
  EXPECT_EQ(sender.unacked(), 0u);
}

TEST(ReliableQueueTest, CorruptedEnvelopeNotAckedThenRecovered) {
  SimulatedClock clock(0);
  kv::KvStore kv(&clock);
  invalidb::ReliableOptions opts = Reliable();
  invalidb::ReliableSender sender(&clock, &kv, "q", "s", opts);
  invalidb::ReliableReceiver receiver(&kv, "q", opts);
  sender.Send("fragile");
  // Corrupt the in-flight envelope's payload (the checksum must catch it).
  std::string wire = kv.QueueTryPop("q").value();
  const size_t pos = wire.find("fragile");
  ASSERT_NE(pos, std::string::npos);
  wire[pos] ^= 0x20;
  kv.QueuePush("q", wire);
  std::vector<std::string> got;
  receiver.Poll([&](const std::string& p) { got.push_back(p); });
  EXPECT_TRUE(got.empty());        // rejected
  EXPECT_EQ(kv.QueueLen("q:acks"), 0u);  // and NOT acked
  // The sender's retransmission delivers the intact copy.
  clock.Advance(opts.retransmit_timeout * 2);
  sender.Tick();
  receiver.Poll([&](const std::string& p) { got.push_back(p); });
  EXPECT_EQ(got, (std::vector<std::string>{"fragile"}));
  sender.Tick();
  EXPECT_EQ(sender.unacked(), 0u);
}

// Tick must be O(1) while nothing is due: the sender tracks the earliest
// retransmit deadline and skips the scan of the unacked map entirely
// until the clock reaches it. With frequent Ticks (every pump) and deep
// unacked queues, the scan — not the retransmits — used to dominate.
TEST(ReliableQueueTest, TickSkipsRetransmitScanUntilDeadline) {
  SimulatedClock clock(0);
  kv::KvStore kv(&clock);
  invalidb::ReliableOptions opts = Reliable();
  opts.jitter = 0.0;
  invalidb::ReliableSender sender(&clock, &kv, "q", "s", opts);
  for (int i = 0; i < 50; ++i) sender.Send("m" + std::to_string(i));
  ASSERT_EQ(sender.unacked(), 50u);

  // Hammer Tick with nothing due: no scan may run.
  const uint64_t scans_before = sender.retransmit_scans();
  for (int i = 0; i < 1000; ++i) {
    clock.Advance(opts.retransmit_timeout / 2000);
    sender.Tick();
  }
  EXPECT_EQ(sender.retransmit_scans(), scans_before);
  EXPECT_EQ(sender.redeliveries(), 0u);

  // Cross the deadline: exactly one scan retransmits everything due,
  // then the early-out holds again until the next (backed-off) deadline.
  clock.Advance(opts.retransmit_timeout);
  sender.Tick();
  EXPECT_EQ(sender.retransmit_scans(), scans_before + 1);
  EXPECT_EQ(sender.redeliveries(), 50u);
  for (int i = 0; i < 100; ++i) sender.Tick();
  EXPECT_EQ(sender.retransmit_scans(), scans_before + 1);

  // Acks clear the queue and retire the deadlines with the messages: an
  // idle sender never scans again — not even one lazy-expiry scan.
  std::vector<std::string> got;
  invalidb::ReliableReceiver receiver(&kv, "q", opts);
  receiver.Poll([&](const std::string& p) { got.push_back(p); });
  EXPECT_EQ(got.size(), 50u);
  sender.Tick();  // consume acks
  ASSERT_EQ(sender.unacked(), 0u);
  const uint64_t idle_scans = sender.retransmit_scans();
  clock.Advance(opts.max_backoff * 8);
  for (int i = 0; i < 100; ++i) sender.Tick();
  EXPECT_EQ(sender.retransmit_scans(), idle_scans);
  EXPECT_EQ(sender.redeliveries(), 50u);  // nothing re-sent after acks
}

// Regression: acking the message that held the earliest retransmit
// deadline must retire that deadline with it. The sender used to cache a
// scalar minimum that went stale-low on ack, so the next Tick between
// the dead deadline and the real one paid a full (empty) scan of the
// unacked map for a message that was already gone.
TEST(ReliableQueueTest, AckRetiresEarliestDeadlineWithoutScan) {
  SimulatedClock clock(0);
  kv::KvStore kv(&clock);
  invalidb::ReliableOptions opts = Reliable();
  opts.jitter = 0.0;
  invalidb::ReliableSender sender(&clock, &kv, "q", "s", opts);
  invalidb::ReliableReceiver receiver(&kv, "q", opts);

  sender.Send("m1");  // deadline: t0 + timeout
  clock.Advance(opts.retransmit_timeout / 2);
  sender.Send("m2");  // deadline: t0 + 1.5 * timeout
  // The channel delivers m1 but eats m2, so only m1 gets acked.
  const std::string m1_wire = kv.QueueTryPop("q").value();
  ASSERT_TRUE(kv.QueueTryPop("q").has_value());
  kv.QueuePush("q", m1_wire);
  receiver.Poll([](const std::string&) {});
  sender.ProcessAcks();
  ASSERT_EQ(sender.unacked(), 1u);  // only m2 remains

  // Between m1's retired deadline and m2's live one nothing is due, so
  // the O(1) early-out must hold — a scan here means the ack left the
  // earliest-deadline tracking stale.
  const uint64_t scans = sender.retransmit_scans();
  clock.Advance(3 * opts.retransmit_timeout / 4);  // t0 + 1.25 * timeout
  sender.Tick();
  EXPECT_EQ(sender.retransmit_scans(), scans);
  EXPECT_EQ(sender.redeliveries(), 0u);

  // m2's own deadline still fires on time.
  clock.Advance(opts.retransmit_timeout / 2);  // t0 + 1.75 * timeout
  sender.Tick();
  EXPECT_EQ(sender.retransmit_scans(), scans + 1);
  EXPECT_EQ(sender.redeliveries(), 1u);
}

TEST(ReliableQueueTest, ExponentialBackoffCapped) {
  SimulatedClock clock(0);
  kv::KvStore kv(&clock);
  invalidb::ReliableOptions opts = Reliable();
  opts.jitter = 0.0;
  invalidb::ReliableSender sender(&clock, &kv, "q", "s", opts);
  sender.Send("x");
  (void)kv.QueueTryPop("q");
  uint64_t redeliveries = 0;
  for (int i = 0; i < 12; ++i) {
    clock.Advance(opts.max_backoff);
    sender.Tick();
    (void)kv.QueueTryPop("q");  // channel keeps eating them
    EXPECT_GE(sender.redeliveries(), redeliveries);
    redeliveries = sender.redeliveries();
  }
  // Backoff is capped at max_backoff, so advancing by max_backoff each
  // round keeps triggering retransmits.
  EXPECT_GE(redeliveries, 10u);
}

TEST(ReliableQueueTest, MaxInflightWindowRejectsNewSends) {
  SimulatedClock clock(0);
  kv::KvStore kv(&clock);
  invalidb::ReliableOptions opts = Reliable();
  opts.max_inflight = 3;
  invalidb::ReliableSender sender(&clock, &kv, "q", "s", opts);
  EXPECT_TRUE(sender.Send("a").ok());
  EXPECT_TRUE(sender.Send("b").ok());
  EXPECT_TRUE(sender.Send("c").ok());
  EXPECT_TRUE(sender.Send("d").IsResourceExhausted());
  EXPECT_EQ(sender.unacked(), 3u);
  EXPECT_EQ(sender.inflight_rejections(), 1u);
  EXPECT_EQ(kv.QueueLen("q"), 3u);  // the rejected payload never hit the wire

  // Acks open the window again.
  invalidb::ReliableReceiver receiver(&kv, "q", opts);
  receiver.Poll([](const std::string&) {});
  sender.Tick();
  EXPECT_EQ(sender.unacked(), 0u);
  EXPECT_TRUE(sender.Send("d").ok());

  // The default stays unlimited: transport call sites ignore Send's
  // status, so a bound must be opted into.
  EXPECT_EQ(invalidb::ReliableOptions().max_inflight, 0u);
}

// ---------------------------------------------------------------------------
// Client retry on 503
// ---------------------------------------------------------------------------

TEST(ClientRetryTest, UnavailableSurfacesAfterBudgetAndRecovers) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  core::QuaestorServer server(&clock, &db);
  ASSERT_TRUE(server.Insert("t", "x", Doc(R"({"v":1})")).ok());
  client::ClientOptions copts;
  copts.retry.enabled = true;
  copts.retry.max_attempts = 3;
  client::QuaestorClient c(&clock, &server, nullptr, nullptr, copts);
  c.Connect();

  server.SetUnavailable(true);
  auto r = c.Read("t", "x");
  EXPECT_TRUE(r.status.IsUnavailable());
  EXPECT_EQ(c.stats().retries, 2u);                // 3 attempts total
  EXPECT_EQ(c.stats().unavailable_failures, 1u);
  EXPECT_GT(r.outcome.latency_ms, 0.0);           // backoff was charged

  server.SetUnavailable(false);
  auto ok = c.Read("t", "x");
  ASSERT_TRUE(ok.status.ok());
  EXPECT_EQ(ok.doc.Find("v")->as_int(), 1);
  EXPECT_EQ(c.stats().unavailable_failures, 1u);
}

TEST(ClientRetryTest, DisabledRetrySurfacesImmediately) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  core::QuaestorServer server(&clock, &db);
  ASSERT_TRUE(server.Insert("t", "x", Doc(R"({"v":1})")).ok());
  client::QuaestorClient c(&clock, &server, nullptr, nullptr);
  server.SetUnavailable(true);
  auto r = c.Read("t", "x");
  EXPECT_TRUE(r.status.IsUnavailable());
  EXPECT_EQ(c.stats().retries, 0u);
}

TEST(ClientRetryTest, RetryBudgetSuppressesRetryStorms) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  core::QuaestorServer server(&clock, &db);
  ASSERT_TRUE(server.Insert("t", "x", Doc(R"({"v":1})")).ok());
  client::ClientOptions copts;
  copts.retry.enabled = true;
  copts.retry.max_attempts = 3;
  copts.retry.retry_budget = 3.0;
  copts.retry.budget_refill_per_success = 1.0;
  client::QuaestorClient c(&clock, &server, nullptr, nullptr, copts);
  c.Connect();

  // A long outage: the first failures burn the 3-token budget (2 retries
  // per read), after which retries are suppressed fleet-wide.
  server.SetUnavailable(true);
  (void)c.Read("t", "x");  // 2 retries, 1 token left
  EXPECT_EQ(c.stats().retries, 2u);
  (void)c.Read("t", "x");  // 1 retry, then bucket empty
  EXPECT_EQ(c.stats().retries, 3u);
  EXPECT_EQ(c.stats().retries_suppressed, 1u);
  (void)c.Read("t", "x");  // no tokens at all: fail fast
  EXPECT_EQ(c.stats().retries, 3u);
  EXPECT_EQ(c.stats().retries_suppressed, 2u);

  // Successes refill the bucket and retries resume.
  server.SetUnavailable(false);
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(c.Read("t", "x").status.ok());
  server.SetUnavailable(true);
  (void)c.Read("t", "x");
  EXPECT_EQ(c.stats().retries, 5u);
}

// ---------------------------------------------------------------------------
// Server degradation plumbing
// ---------------------------------------------------------------------------

TEST(DegradationTest, ManualDegradeCapsTtls) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  core::ServerOptions opts;
  opts.degradation.enabled = true;
  opts.degradation.degraded_ttl_cap = 200 * kMicrosPerMilli;
  core::QuaestorServer server(&clock, &db, opts);
  ASSERT_TRUE(server.Insert("t", "x", Doc(R"({"v":1})")).ok());

  webcache::HttpRequest req;
  req.key = "t/x";
  auto healthy = server.Fetch(req);
  ASSERT_TRUE(healthy.ok);
  EXPECT_GT(healthy.ttl, opts.degradation.degraded_ttl_cap);

  server.SetDegraded(true);
  EXPECT_TRUE(server.degraded());
  auto capped = server.Fetch(req);
  ASSERT_TRUE(capped.ok);
  EXPECT_LE(capped.ttl, opts.degradation.degraded_ttl_cap);
  EXPECT_GE(server.stats().degraded_reads, 1u);
  EXPECT_EQ(server.stats().degradation_flips, 1u);

  server.SetDegraded(false);
  EXPECT_FALSE(server.degraded());
  auto again = server.Fetch(req);
  EXPECT_GT(again.ttl, opts.degradation.degraded_ttl_cap);
  EXPECT_EQ(server.stats().degradation_flips, 2u);
}

TEST(DegradationTest, DisabledDegradationIgnoresSignals) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  core::QuaestorServer server(&clock, &db);  // degradation.enabled = false
  server.SetDegraded(true);
  EXPECT_FALSE(server.degraded());
  server.SetPipelineDown(true);
  EXPECT_FALSE(server.degraded());  // still drops events, but no cap
  EXPECT_TRUE(server.pipeline_health().pipeline_down);
}

TEST(DegradationTest, PipelineDownDropsChangesAndDegrades) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  core::ServerOptions opts;
  opts.degradation.enabled = true;
  core::QuaestorServer server(&clock, &db, opts);
  server.SetPipelineDown(true);
  EXPECT_TRUE(server.degraded());
  ASSERT_TRUE(server.Insert("t", "x", Doc(R"({"v":1})")).ok());
  EXPECT_EQ(server.stats().change_events_dropped, 1u);
  EXPECT_EQ(server.invalidb().stats().changes_ingested, 0u);

  server.SetPipelineDown(false);
  EXPECT_FALSE(server.degraded());
  ASSERT_TRUE(server.Insert("t", "y", Doc(R"({"v":2})")).ok());
  EXPECT_EQ(server.stats().change_events_dropped, 1u);
  EXPECT_EQ(server.invalidb().stats().changes_ingested, 1u);
}

TEST(DegradationTest, DeadNodeDegradesUntilRestart) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  core::ServerOptions opts;
  opts.degradation.enabled = true;
  core::QuaestorServer server(&clock, &db, opts);
  server.invalidb().KillNode(0);
  server.invalidb().Flush();
  EXPECT_TRUE(server.degraded());
  auto health = server.pipeline_health();
  EXPECT_TRUE(health.degraded);
  EXPECT_EQ(health.nodes_alive, 0u);
  EXPECT_EQ(health.nodes_total, 1u);
  server.invalidb().RestartNode(
      0, [&](const db::Query& q) { return db.Execute(q); });
  server.invalidb().Flush();
  EXPECT_FALSE(server.degraded());
}

TEST(DegradationTest, ChangeLossRateDropsDeterministically) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  core::ServerOptions opts;
  opts.fault_change_loss_rate = 1.0;  // every event lost
  core::QuaestorServer server(&clock, &db, opts);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        server.Insert("t", "d" + std::to_string(i), Doc(R"({"v":1})")).ok());
  }
  EXPECT_EQ(server.stats().change_events_dropped, 5u);
  EXPECT_EQ(server.invalidb().stats().changes_ingested, 0u);
}

}  // namespace
}  // namespace quaestor
