// Transport round-trip fuzz: random, truncated, and mutated bytes into
// every wire decoder. Decoders must return an error status — never crash,
// hang, or deliver mutated payloads as valid.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "db/query.h"
#include "db/value.h"
#include "fault/fault_injector.h"
#include "invalidb/reliable_queue.h"
#include "invalidb/transport.h"
#include "kv/kv_store.h"

namespace quaestor::invalidb {
namespace {

db::Value Doc(const char* json) {
  auto v = db::Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

db::Query Q(const char* table, const char* filter) {
  auto q = db::Query::ParseJson(table, filter);
  EXPECT_TRUE(q.ok());
  return q.value();
}

std::string RandomBytes(Rng* rng, size_t max_len) {
  const size_t len = rng->NextUint64(max_len + 1);
  std::string s(len, '\0');
  for (size_t i = 0; i < len; ++i) {
    s[i] = static_cast<char>(rng->NextUint64(256));
  }
  return s;
}

// Feeds one message into every decoder; none may crash.
void ExerciseDecoders(const std::string& message) {
  (void)transport::DecodeNotification(message).ok();
  (void)transport::DecodeChangeBatch(message).ok();
  (void)transport::DecodeNotificationBatch(message).ok();
  (void)reliable::Decode(message).ok();
  (void)reliable::DecodeAck(message).ok();
  auto parsed = db::Value::FromJson(message);
  if (parsed.ok()) {
    (void)db::Query::FromSpec(parsed.value()).ok();
    (void)transport::DecodeDocument(parsed.value()).ok();
  }
}

TEST(TransportFuzzTest, RandomBytesNeverCrashDecoders) {
  Rng rng(0xfa22);
  for (int i = 0; i < 5000; ++i) {
    ExerciseDecoders(RandomBytes(&rng, 64));
  }
}

std::vector<std::string> ValidWireMessages() {
  std::vector<std::string> msgs;

  Notification n;
  n.type = NotificationType::kChangeIndex;
  n.query_key = "q:t?a $eq 1";
  n.record_id = "d7";
  n.event_time = 12345;
  n.new_index = 3;
  msgs.push_back(transport::EncodeNotification(n));

  db::ChangeEvent ev;
  ev.kind = db::WriteKind::kUpdate;
  ev.after.table = "posts";
  ev.after.id = "p1";
  ev.after.body = Doc(R"({"g":1,"tags":["a","b"]})");
  ev.commit_time = 99;
  msgs.push_back(transport::EncodeChange(ev));

  db::Query q = Q("posts", R"({"g":{"$gte":1},"x":"y"})");
  q.SetOrderBy({{"score", false}}).SetLimit(3);
  db::Document init;
  init.table = "posts";
  init.id = "p1";
  init.body = Doc(R"({"g":2})");
  msgs.push_back(transport::EncodeRegister(q, {init}, kEventsAll, 7));
  msgs.push_back(transport::EncodeDeregister(q.NormalizedKey()));
  msgs.push_back(transport::EncodeResize(3, 2));

  // Batch envelopes: a multi-event change batch (escaped id stresses the
  // canonical scanner's string fallback), an empty batch, and a
  // notification batch.
  db::ChangeEvent ev2 = ev;
  ev2.kind = db::WriteKind::kDelete;
  ev2.after.deleted = true;
  ev2.after.id = "needs\\escaping\"quote";
  msgs.push_back(transport::EncodeChangeBatch({ev, ev2}));
  msgs.push_back(transport::EncodeChangeBatch({}));
  msgs.push_back(transport::EncodeNotificationBatch({n, n}));

  msgs.push_back(reliable::Encode("sender-1", 42, msgs[0]));
  msgs.push_back(reliable::EncodeAck("sender-1", 42));
  return msgs;
}

TEST(TransportFuzzTest, EveryTruncationOfValidMessagesIsHandled) {
  for (const std::string& wire : ValidWireMessages()) {
    for (size_t cut = 0; cut <= wire.size(); ++cut) {
      ExerciseDecoders(wire.substr(0, cut));
    }
  }
}

TEST(TransportFuzzTest, MutatedValidMessagesAreHandled) {
  fault::FaultProfile profile;
  profile.corrupt_rate = 1.0;
  fault::FaultInjector injector(0xc0de, profile);
  for (const std::string& wire : ValidWireMessages()) {
    for (int round = 0; round < 300; ++round) {
      std::string mutated = wire;
      injector.Corrupt(&mutated);
      ExerciseDecoders(mutated);
    }
  }
}

TEST(TransportFuzzTest, CorruptedEnvelopesNeverDeliverMutatedPayloads) {
  fault::FaultProfile profile;
  profile.corrupt_rate = 1.0;
  fault::FaultInjector injector(0xbeef, profile);
  const std::string payload = R"({"op":"change","table":"t"})";
  const std::string wire = reliable::Encode("s", 1, payload);
  for (int round = 0; round < 500; ++round) {
    std::string mutated = wire;
    injector.Corrupt(&mutated);
    auto env = reliable::Decode(mutated);
    if (env.ok()) {
      // A mutation that still decodes must have left the envelope's
      // protected content intact (e.g. whitespace-only splice).
      EXPECT_EQ(env->payload, payload);
      EXPECT_EQ(env->sender, "s");
      EXPECT_EQ(env->seq, 1u);
    }
  }
}

TEST(TransportFuzzTest, WorkerSurvivesGarbageOnItsRequestQueue) {
  SimulatedClock clock(0);
  kv::KvStore kv(&clock);
  InvalidbWorker worker(&clock, &kv, "fz");

  Rng rng(0x5eed);
  fault::FaultProfile profile;
  profile.corrupt_rate = 1.0;
  fault::FaultInjector injector(0x5eed, profile);
  const std::vector<std::string> valid = ValidWireMessages();

  size_t pushed = 0;
  for (int i = 0; i < 400; ++i) {
    std::string msg;
    if (i % 3 == 0) {
      msg = RandomBytes(&rng, 48);
    } else {
      msg = valid[rng.NextUint64(valid.size())];
      injector.Corrupt(&msg);
    }
    kv.QueuePush("fz:requests", msg);
    pushed++;
  }
  // Checksum-failing envelopes are dropped inside the receiver (never
  // reach the handler), so handled <= pushed; the queue must still drain.
  const size_t handled = worker.ProcessPending();
  EXPECT_LE(handled, pushed);
  EXPECT_GT(handled, 0u);
  EXPECT_EQ(kv.QueueLen("fz:requests"), 0u);
  EXPECT_GT(worker.decode_errors(), 0u);

  // The worker still functions after the garbage storm.
  db::Query q = Q("posts", R"({"g":1})");
  kv.QueuePush("fz:requests",
               transport::EncodeRegister(q, {}, kEventsAll, 0));
  worker.ProcessPending();
  EXPECT_TRUE(worker.cluster().IsRegistered(q.NormalizedKey()));
}

// A batch envelope is all-or-nothing at the worker: a torn or inner-
// corrupt batch is dropped whole (one decode error, zero events applied)
// and an empty batch is a harmless no-op — never a crash, never a
// half-applied prefix.
TEST(TransportFuzzTest, WorkerDropsTornBatchesWhole) {
  SimulatedClock clock(0);
  kv::KvStore kv(&clock);
  std::vector<Notification> received;
  InvalidbWorker worker(&clock, &kv, "tb");
  InvalidbRemote remote(&clock, &kv, "tb",
                        [&](const Notification& n) { received.push_back(n); });
  db::Query q = Q("posts", R"({"g":1})");
  kv.QueuePush("tb:requests", transport::EncodeRegister(q, {}, kEventsAll, 0));

  std::vector<db::ChangeEvent> events;
  for (int i = 0; i < 3; ++i) {
    db::ChangeEvent ev;
    ev.kind = db::WriteKind::kUpdate;
    ev.after.table = "posts";
    ev.after.id = "p" + std::to_string(i);
    ev.after.body = Doc(R"({"g":1})");
    ev.commit_time = i + 1;
    ev.after.write_time = ev.commit_time;
    events.push_back(std::move(ev));
  }
  const std::string whole = transport::EncodeChangeBatch(events);

  // Truncated batch: even though the first two event specs are intact,
  // none of the three may be matched.
  kv.QueuePush("tb:requests", whole.substr(0, whole.size() - 12));
  // Corrupt inner event (second of three): same all-or-nothing rule.
  std::string corrupt = whole;
  corrupt.replace(corrupt.find("\"id\":\"p1\""), 9, "\"id\":12345");
  kv.QueuePush("tb:requests", corrupt);
  // Empty batch: decodes fine, applies nothing.
  kv.QueuePush("tb:requests", transport::EncodeChangeBatch({}));
  worker.ProcessPending();
  remote.DrainNotifications();
  EXPECT_EQ(worker.decode_errors(), 2u);
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(worker.cluster().stats().changes_ingested, 0u);

  // The intact batch still flows after the torn ones were dropped.
  kv.QueuePush("tb:requests", whole);
  worker.ProcessPending();
  remote.DrainNotifications();
  EXPECT_EQ(received.size(), 3u);
  EXPECT_EQ(worker.cluster().stats().changes_ingested, 3u);
}

TEST(TransportFuzzTest, RemoteSurvivesGarbageOnItsNotificationQueue) {
  SimulatedClock clock(0);
  kv::KvStore kv(&clock);
  std::vector<Notification> received;
  InvalidbRemote remote(&clock, &kv, "fz",
                        [&](const Notification& n) { received.push_back(n); });

  Rng rng(0xdead);
  for (int i = 0; i < 300; ++i) {
    kv.QueuePush("fz:notifications", RandomBytes(&rng, 48));
  }
  Notification n;
  n.type = NotificationType::kAdd;
  n.query_key = "k";
  n.record_id = "r";
  kv.QueuePush("fz:notifications", transport::EncodeNotification(n));
  remote.DrainNotifications();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].record_id, "r");
  EXPECT_GT(remote.decode_errors(), 0u);
}

}  // namespace
}  // namespace quaestor::invalidb
