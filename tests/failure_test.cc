// Failure-injection and edge-case tests: saturation, shutdown under load,
// degenerate configurations, malformed inputs.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "client/client.h"
#include "common/clock.h"
#include "core/server.h"
#include "db/database.h"
#include "ebf/expiring_bloom_filter.h"
#include "invalidb/cluster.h"
#include "sim/simulation.h"
#include "webcache/web_cache.h"

namespace quaestor {
namespace {

db::Value Doc(const char* json) {
  auto v = db::Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

db::Query Q(const char* table, const char* filter) {
  auto q = db::Query::ParseJson(table, filter);
  EXPECT_TRUE(q.ok());
  return q.value();
}

// ---------------------------------------------------------------------------
// InvaliDB under stress
// ---------------------------------------------------------------------------

TEST(FailureTest, ThreadedClusterWithTinyQueuesBackpressures) {
  // Queue capacity 2: producers block instead of dropping; every event is
  // still processed exactly once.
  invalidb::InvalidbOptions opts;
  opts.threaded = true;
  opts.query_partitions = 2;
  opts.object_partitions = 1;
  opts.node_queue_capacity = 2;
  std::atomic<int> delivered{0};
  invalidb::InvalidbCluster cluster(
      SystemClock::Default(), opts,
      [&](const invalidb::Notification&) { delivered++; });
  db::Query q = Q("t", R"({"n":{"$gte":0}})");
  ASSERT_TRUE(cluster.RegisterQuery(q, {}, invalidb::kEventsAll).ok());
  cluster.Flush();
  constexpr int kEvents = 300;
  for (int i = 0; i < kEvents; ++i) {
    db::ChangeEvent ev;
    ev.kind = db::WriteKind::kUpdate;
    ev.after.table = "t";
    ev.after.id = "d" + std::to_string(i);
    ev.after.body = Doc(R"({"n":1})");
    cluster.OnChange(ev);
  }
  cluster.Flush();
  EXPECT_EQ(delivered.load(), kEvents);
}

TEST(FailureTest, DeregisterWhileEventsInFlight) {
  invalidb::InvalidbOptions opts;
  opts.threaded = true;
  std::atomic<int> delivered{0};
  invalidb::InvalidbCluster cluster(
      SystemClock::Default(), opts,
      [&](const invalidb::Notification&) { delivered++; });
  db::Query q = Q("t", R"({"n":{"$gte":0}})");
  ASSERT_TRUE(cluster.RegisterQuery(q, {}, invalidb::kEventsAll).ok());
  std::thread producer([&] {
    for (int i = 0; i < 200; ++i) {
      db::ChangeEvent ev;
      ev.kind = db::WriteKind::kUpdate;
      ev.after.table = "t";
      ev.after.id = "d" + std::to_string(i);
      ev.after.body = Doc(R"({"n":1})");
      cluster.OnChange(ev);
    }
  });
  cluster.DeregisterQuery(q.NormalizedKey());
  producer.join();
  cluster.Flush();
  // No crash, no hang; deliveries are a prefix of the stream.
  EXPECT_LE(delivered.load(), 200);
}

TEST(FailureTest, ConcurrentRegistrationsAndChanges) {
  invalidb::InvalidbOptions opts;
  opts.threaded = true;
  opts.query_partitions = 4;
  std::atomic<int> delivered{0};
  invalidb::InvalidbCluster cluster(
      SystemClock::Default(), opts,
      [&](const invalidb::Notification&) { delivered++; });
  std::thread registrar([&] {
    for (int i = 0; i < 50; ++i) {
      db::Query q = Q("t", ("{\"g\":" + std::to_string(i) + "}").c_str());
      (void)cluster.RegisterQuery(q, {}, invalidb::kEventsAll);
    }
  });
  std::thread producer([&] {
    for (int i = 0; i < 200; ++i) {
      db::ChangeEvent ev;
      ev.kind = db::WriteKind::kUpdate;
      ev.after.table = "t";
      ev.after.id = "d" + std::to_string(i % 10);
      ev.after.body =
          Doc(("{\"g\":" + std::to_string(i % 50) + "}").c_str());
      cluster.OnChange(ev);
    }
  });
  registrar.join();
  producer.join();
  cluster.Flush();
  EXPECT_EQ(cluster.RegisteredCount(), 50u);
  EXPECT_GT(delivered.load(), 0);
}

// ---------------------------------------------------------------------------
// Server edge cases
// ---------------------------------------------------------------------------

class ServerEdgeTest : public ::testing::Test {
 protected:
  ServerEdgeTest() : clock_(0), db_(&clock_) {
    server_ = std::make_unique<core::QuaestorServer>(&clock_, &db_);
  }
  SimulatedClock clock_;
  db::Database db_;
  std::unique_ptr<core::QuaestorServer> server_;
};

TEST_F(ServerEdgeTest, MalformedKeysAre404) {
  webcache::HttpRequest req;
  req.key = "no-slash-here";
  EXPECT_FALSE(server_->Fetch(req).ok);
  req.key = "";
  EXPECT_FALSE(server_->Fetch(req).ok);
  req.key = "q:unknown?never registered";
  EXPECT_FALSE(server_->Fetch(req).ok);
}

TEST_F(ServerEdgeTest, QueryOnEmptyTableServesEmptyResult) {
  db::Query q = Q("ghost_table", R"({"x":1})");
  server_->RegisterQueryShape(q);
  webcache::HttpRequest req;
  req.key = q.NormalizedKey();
  auto resp = server_->Fetch(req);
  ASSERT_TRUE(resp.ok);
  auto qr = core::QueryResponse::FromJson(resp.body);
  ASSERT_TRUE(qr.ok());
  EXPECT_TRUE(qr->ids.empty());
  EXPECT_GT(resp.ttl, 0);  // empty results are cacheable too
}

TEST_F(ServerEdgeTest, EmptyResultInvalidatedWhenFirstMatchAppears) {
  db::Query q = Q("t", R"({"g":1})");
  server_->RegisterQueryShape(q);
  webcache::HttpRequest req;
  req.key = q.NormalizedKey();
  ASSERT_TRUE(server_->Fetch(req).ok);
  clock_.Advance(kMicrosPerSecond);
  ASSERT_TRUE(server_->Insert("t", "d1", Doc(R"({"g":1})")).ok());
  EXPECT_TRUE(server_->ebf().IsStale(q.NormalizedKey()));
}

TEST_F(ServerEdgeTest, ZeroCapacityIsUnlimited) {
  core::ServerOptions opts;
  opts.query_capacity = 0;
  auto server = std::make_unique<core::QuaestorServer>(&clock_, &db_, opts);
  for (int i = 0; i < 50; ++i) {
    db::Query q =
        Q("t", ("{\"g\":" + std::to_string(i) + "}").c_str());
    server->RegisterQueryShape(q);
    webcache::HttpRequest req;
    req.key = q.NormalizedKey();
    ASSERT_TRUE(server->Fetch(req).ok);
  }
  EXPECT_EQ(server->invalidb().RegisteredCount(), 50u);
}

TEST_F(ServerEdgeTest, DoubleDeleteReportsNotFound) {
  ASSERT_TRUE(server_->Insert("t", "x", Doc("{}")).ok());
  ASSERT_TRUE(server_->Delete("t", "x").ok());
  EXPECT_TRUE(server_->Delete("t", "x").status().IsNotFound());
  EXPECT_TRUE(server_->Update("t", "x", db::Update().Set("a", db::Value(1)))
                  .status()
                  .IsNotFound());
}

// ---------------------------------------------------------------------------
// Client edge cases
// ---------------------------------------------------------------------------

TEST(ClientEdgeTest, ReadBeforeConnectWorksWithoutEbf) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  core::QuaestorServer server(&clock, &db);
  ASSERT_TRUE(server.Insert("t", "x", Doc(R"({"v":1})")).ok());
  webcache::ExpirationCache cache(&clock);
  client::QuaestorClient c(&clock, &server, &cache, nullptr);
  // No Connect(): the EBF is absent; reads behave like plain HTTP caching.
  auto r = c.Read("t", "x");
  ASSERT_TRUE(r.status.ok());
  EXPECT_FALSE(r.outcome.revalidated);
}

TEST(ClientEdgeTest, TinyClientCacheStillCorrect) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  core::QuaestorServer server(&clock, &db);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(server
                    .Insert("t", "d" + std::to_string(i),
                            Doc(("{\"n\":" + std::to_string(i) + "}")
                                    .c_str()))
                    .ok());
  }
  webcache::ExpirationCache cache(&clock, /*max_entries=*/2);
  client::QuaestorClient c(&clock, &server, &cache, nullptr);
  c.Connect();
  // Cycle through many keys: evictions galore, values always correct.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) {
      auto r = c.Read("t", "d" + std::to_string(i));
      ASSERT_TRUE(r.status.ok());
      EXPECT_EQ(r.doc.Find("n")->as_int(), i);
    }
  }
  EXPECT_LE(cache.Size(), 2u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(ClientEdgeTest, QueryWithEmptyResultRoundTrips) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  core::QuaestorServer server(&clock, &db);
  webcache::ExpirationCache cache(&clock);
  client::QuaestorClient c(&clock, &server, &cache, nullptr);
  c.Connect();
  auto qr = c.ExecuteQuery(Q("t", R"({"never":"matches"})"));
  ASSERT_TRUE(qr.status.ok());
  EXPECT_TRUE(qr.ids.empty());
  EXPECT_TRUE(qr.docs.empty());
  // Cached: second execution is a client hit.
  auto qr2 = c.ExecuteQuery(Q("t", R"({"never":"matches"})"));
  EXPECT_EQ(qr2.outcome.served_by, webcache::ServedBy::kClientCache);
}

// ---------------------------------------------------------------------------
// EBF degenerate configurations
// ---------------------------------------------------------------------------

TEST(EbfEdgeTest, TinyFilterSaturatesButStaysSafe) {
  SimulatedClock clock(0);
  ebf::BloomParams params;
  params.num_bits = 64;  // absurdly small: will saturate
  params.num_hashes = 2;
  ebf::ExpiringBloomFilter filter(&clock, params);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "k" + std::to_string(i);
    filter.ReportRead(key, 10 * kMicrosPerSecond);
    filter.ReportWrite(key);
  }
  // Saturated: everything looks stale (safe), nothing crashes.
  ebf::BloomFilter snap = filter.Snapshot();
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(snap.MaybeContains("k" + std::to_string(i)));
  }
  // After expiry everything drains back to empty.
  clock.Advance(11 * kMicrosPerSecond);
  filter.Maintain();
  EXPECT_EQ(filter.StaleCount(), 0u);
  EXPECT_DOUBLE_EQ(filter.Snapshot().FillRatio(), 0.0);
}

TEST(EbfEdgeTest, ManyWritesToSameKeySingleCounterBalance) {
  SimulatedClock clock(0);
  ebf::ExpiringBloomFilter filter(&clock);
  filter.ReportRead("k", 5 * kMicrosPerSecond);
  for (int i = 0; i < 1000; ++i) filter.ReportWrite("k");
  clock.Advance(6 * kMicrosPerSecond);
  filter.Maintain();
  EXPECT_FALSE(filter.Snapshot().MaybeContains("k"));
  EXPECT_EQ(filter.TrackedCount(), 0u);
}

// ---------------------------------------------------------------------------
// Simulation degenerate configurations
// ---------------------------------------------------------------------------

TEST(SimEdgeTest, ZeroWarmupAndShortDuration) {
  workload::WorkloadOptions w;
  w.num_tables = 1;
  w.docs_per_table = 50;
  w.queries_per_table = 5;
  sim::SimOptions s;
  s.num_client_instances = 1;
  s.connections_per_instance = 2;
  s.duration = SecondsToMicros(2.0);
  s.warmup = 0;
  sim::Simulation simulation(w, s);
  sim::SimResults r = simulation.Run();
  EXPECT_GT(r.total_ops, 0u);
}

TEST(SimEdgeTest, WriteOnlyWorkload) {
  workload::WorkloadOptions w;
  w.num_tables = 1;
  w.docs_per_table = 50;
  w.queries_per_table = 5;
  w.read_weight = 0.0;
  w.query_weight = 0.0;
  w.update_weight = 1.0;
  sim::SimOptions s;
  s.num_client_instances = 1;
  s.connections_per_instance = 2;
  s.duration = SecondsToMicros(5.0);
  s.warmup = SecondsToMicros(1.0);
  sim::Simulation simulation(w, s);
  sim::SimResults r = simulation.Run();
  EXPECT_EQ(r.reads.count, 0u);
  EXPECT_EQ(r.queries.count, 0u);
  EXPECT_GT(r.writes.count, 0u);
}

TEST(SimEdgeTest, RunIsIdempotent) {
  workload::WorkloadOptions w;
  w.num_tables = 1;
  w.docs_per_table = 20;
  w.queries_per_table = 2;
  sim::SimOptions s;
  s.num_client_instances = 1;
  s.connections_per_instance = 1;
  s.duration = SecondsToMicros(2.0);
  s.warmup = 0;
  sim::Simulation simulation(w, s);
  sim::SimResults first = simulation.Run();
  sim::SimResults second = simulation.Run();  // returns cached results
  EXPECT_EQ(first.total_ops, second.total_ops);
}

}  // namespace
}  // namespace quaestor
