// Failure-injection and edge-case tests: saturation, shutdown under load,
// degenerate configurations, malformed inputs.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "check/oracle.h"
#include "client/client.h"
#include "common/clock.h"
#include "core/server.h"
#include "db/database.h"
#include "ebf/expiring_bloom_filter.h"
#include "fault/fault_injector.h"
#include "fault/faulty_kv_store.h"
#include "invalidb/cluster.h"
#include "invalidb/transport.h"
#include "sim/simulation.h"
#include "webcache/web_cache.h"

namespace quaestor {
namespace {

db::Value Doc(const char* json) {
  auto v = db::Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

db::Query Q(const char* table, const char* filter) {
  auto q = db::Query::ParseJson(table, filter);
  EXPECT_TRUE(q.ok());
  return q.value();
}

// ---------------------------------------------------------------------------
// InvaliDB under stress
// ---------------------------------------------------------------------------

TEST(FailureTest, ThreadedClusterWithTinyQueuesBackpressures) {
  // Queue capacity 2: producers block instead of dropping; every event is
  // still processed exactly once.
  invalidb::InvalidbOptions opts;
  opts.threaded = true;
  opts.query_partitions = 2;
  opts.object_partitions = 1;
  opts.node_queue_capacity = 2;
  std::atomic<int> delivered{0};
  invalidb::InvalidbCluster cluster(
      SystemClock::Default(), opts,
      [&](const invalidb::Notification&) { delivered++; });
  db::Query q = Q("t", R"({"n":{"$gte":0}})");
  ASSERT_TRUE(cluster.RegisterQuery(q, {}, invalidb::kEventsAll).ok());
  cluster.Flush();
  constexpr int kEvents = 300;
  for (int i = 0; i < kEvents; ++i) {
    db::ChangeEvent ev;
    ev.kind = db::WriteKind::kUpdate;
    ev.after.table = "t";
    ev.after.id = "d" + std::to_string(i);
    ev.after.body = Doc(R"({"n":1})");
    cluster.OnChange(ev);
  }
  cluster.Flush();
  EXPECT_EQ(delivered.load(), kEvents);
}

TEST(FailureTest, DeregisterWhileEventsInFlight) {
  invalidb::InvalidbOptions opts;
  opts.threaded = true;
  std::atomic<int> delivered{0};
  invalidb::InvalidbCluster cluster(
      SystemClock::Default(), opts,
      [&](const invalidb::Notification&) { delivered++; });
  db::Query q = Q("t", R"({"n":{"$gte":0}})");
  ASSERT_TRUE(cluster.RegisterQuery(q, {}, invalidb::kEventsAll).ok());
  std::thread producer([&] {
    for (int i = 0; i < 200; ++i) {
      db::ChangeEvent ev;
      ev.kind = db::WriteKind::kUpdate;
      ev.after.table = "t";
      ev.after.id = "d" + std::to_string(i);
      ev.after.body = Doc(R"({"n":1})");
      cluster.OnChange(ev);
    }
  });
  cluster.DeregisterQuery(q.NormalizedKey());
  producer.join();
  cluster.Flush();
  // No crash, no hang; deliveries are a prefix of the stream.
  EXPECT_LE(delivered.load(), 200);
}

TEST(FailureTest, ConcurrentRegistrationsAndChanges) {
  invalidb::InvalidbOptions opts;
  opts.threaded = true;
  opts.query_partitions = 4;
  std::atomic<int> delivered{0};
  invalidb::InvalidbCluster cluster(
      SystemClock::Default(), opts,
      [&](const invalidb::Notification&) { delivered++; });
  std::thread registrar([&] {
    for (int i = 0; i < 50; ++i) {
      db::Query q = Q("t", ("{\"g\":" + std::to_string(i) + "}").c_str());
      (void)cluster.RegisterQuery(q, {}, invalidb::kEventsAll);
    }
  });
  std::thread producer([&] {
    for (int i = 0; i < 200; ++i) {
      db::ChangeEvent ev;
      ev.kind = db::WriteKind::kUpdate;
      ev.after.table = "t";
      ev.after.id = "d" + std::to_string(i % 10);
      ev.after.body =
          Doc(("{\"g\":" + std::to_string(i % 50) + "}").c_str());
      cluster.OnChange(ev);
    }
  });
  registrar.join();
  producer.join();
  cluster.Flush();
  EXPECT_EQ(cluster.RegisteredCount(), 50u);
  // The concurrent phase may legally race to zero deliveries (all events
  // can drain before the first registration installs). One more event
  // after the registrations settled must be delivered.
  db::ChangeEvent ev;
  ev.kind = db::WriteKind::kUpdate;
  ev.after.table = "t";
  ev.after.id = "final";
  ev.after.body = Doc(R"({"g":0})");
  cluster.OnChange(ev);
  cluster.Flush();
  EXPECT_GT(delivered.load(), 0);
}

// ---------------------------------------------------------------------------
// Server edge cases
// ---------------------------------------------------------------------------

class ServerEdgeTest : public ::testing::Test {
 protected:
  ServerEdgeTest() : clock_(0), db_(&clock_) {
    server_ = std::make_unique<core::QuaestorServer>(&clock_, &db_);
  }
  SimulatedClock clock_;
  db::Database db_;
  std::unique_ptr<core::QuaestorServer> server_;
};

TEST_F(ServerEdgeTest, MalformedKeysAre404) {
  webcache::HttpRequest req;
  req.key = "no-slash-here";
  EXPECT_FALSE(server_->Fetch(req).ok);
  req.key = "";
  EXPECT_FALSE(server_->Fetch(req).ok);
  req.key = "q:unknown?never registered";
  EXPECT_FALSE(server_->Fetch(req).ok);
}

TEST_F(ServerEdgeTest, QueryOnEmptyTableServesEmptyResult) {
  db::Query q = Q("ghost_table", R"({"x":1})");
  server_->RegisterQueryShape(q);
  webcache::HttpRequest req;
  req.key = q.NormalizedKey();
  auto resp = server_->Fetch(req);
  ASSERT_TRUE(resp.ok);
  auto qr = core::QueryResponse::FromJson(resp.body);
  ASSERT_TRUE(qr.ok());
  EXPECT_TRUE(qr->ids.empty());
  EXPECT_GT(resp.ttl, 0);  // empty results are cacheable too
}

TEST_F(ServerEdgeTest, EmptyResultInvalidatedWhenFirstMatchAppears) {
  db::Query q = Q("t", R"({"g":1})");
  server_->RegisterQueryShape(q);
  webcache::HttpRequest req;
  req.key = q.NormalizedKey();
  ASSERT_TRUE(server_->Fetch(req).ok);
  clock_.Advance(kMicrosPerSecond);
  ASSERT_TRUE(server_->Insert("t", "d1", Doc(R"({"g":1})")).ok());
  EXPECT_TRUE(server_->ebf().IsStale(q.NormalizedKey()));
}

TEST_F(ServerEdgeTest, ZeroCapacityIsUnlimited) {
  core::ServerOptions opts;
  opts.query_capacity = 0;
  auto server = std::make_unique<core::QuaestorServer>(&clock_, &db_, opts);
  for (int i = 0; i < 50; ++i) {
    db::Query q =
        Q("t", ("{\"g\":" + std::to_string(i) + "}").c_str());
    server->RegisterQueryShape(q);
    webcache::HttpRequest req;
    req.key = q.NormalizedKey();
    ASSERT_TRUE(server->Fetch(req).ok);
  }
  EXPECT_EQ(server->invalidb().RegisteredCount(), 50u);
}

TEST_F(ServerEdgeTest, DoubleDeleteReportsNotFound) {
  ASSERT_TRUE(server_->Insert("t", "x", Doc("{}")).ok());
  ASSERT_TRUE(server_->Delete("t", "x").ok());
  EXPECT_TRUE(server_->Delete("t", "x").status().IsNotFound());
  EXPECT_TRUE(server_->Update("t", "x", db::Update().Set("a", db::Value(1)))
                  .status()
                  .IsNotFound());
}

// ---------------------------------------------------------------------------
// Client edge cases
// ---------------------------------------------------------------------------

TEST(ClientEdgeTest, ReadBeforeConnectWorksWithoutEbf) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  core::QuaestorServer server(&clock, &db);
  ASSERT_TRUE(server.Insert("t", "x", Doc(R"({"v":1})")).ok());
  webcache::ExpirationCache cache(&clock);
  client::QuaestorClient c(&clock, &server, &cache, nullptr);
  // No Connect(): the EBF is absent; reads behave like plain HTTP caching.
  auto r = c.Read("t", "x");
  ASSERT_TRUE(r.status.ok());
  EXPECT_FALSE(r.outcome.revalidated);
}

TEST(ClientEdgeTest, TinyClientCacheStillCorrect) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  core::QuaestorServer server(&clock, &db);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(server
                    .Insert("t", "d" + std::to_string(i),
                            Doc(("{\"n\":" + std::to_string(i) + "}")
                                    .c_str()))
                    .ok());
  }
  webcache::ExpirationCache cache(&clock, /*max_entries=*/2);
  client::QuaestorClient c(&clock, &server, &cache, nullptr);
  c.Connect();
  // Cycle through many keys: evictions galore, values always correct.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) {
      auto r = c.Read("t", "d" + std::to_string(i));
      ASSERT_TRUE(r.status.ok());
      EXPECT_EQ(r.doc.Find("n")->as_int(), i);
    }
  }
  EXPECT_LE(cache.Size(), 2u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(ClientEdgeTest, QueryWithEmptyResultRoundTrips) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  core::QuaestorServer server(&clock, &db);
  webcache::ExpirationCache cache(&clock);
  client::QuaestorClient c(&clock, &server, &cache, nullptr);
  c.Connect();
  auto qr = c.ExecuteQuery(Q("t", R"({"never":"matches"})"));
  ASSERT_TRUE(qr.status.ok());
  EXPECT_TRUE(qr.ids.empty());
  EXPECT_TRUE(qr.docs.empty());
  // Cached: second execution is a client hit.
  auto qr2 = c.ExecuteQuery(Q("t", R"({"never":"matches"})"));
  EXPECT_EQ(qr2.outcome.served_by, webcache::ServedBy::kClientCache);
}

// ---------------------------------------------------------------------------
// EBF degenerate configurations
// ---------------------------------------------------------------------------

TEST(EbfEdgeTest, TinyFilterSaturatesButStaysSafe) {
  SimulatedClock clock(0);
  ebf::BloomParams params;
  params.num_bits = 64;  // absurdly small: will saturate
  params.num_hashes = 2;
  ebf::ExpiringBloomFilter filter(&clock, params);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "k" + std::to_string(i);
    filter.ReportRead(key, 10 * kMicrosPerSecond);
    filter.ReportWrite(key);
  }
  // Saturated: everything looks stale (safe), nothing crashes.
  ebf::BloomFilter snap = filter.Snapshot();
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(snap.MaybeContains("k" + std::to_string(i)));
  }
  // After expiry everything drains back to empty.
  clock.Advance(11 * kMicrosPerSecond);
  filter.Maintain();
  EXPECT_EQ(filter.StaleCount(), 0u);
  EXPECT_DOUBLE_EQ(filter.Snapshot().FillRatio(), 0.0);
}

TEST(EbfEdgeTest, ManyWritesToSameKeySingleCounterBalance) {
  SimulatedClock clock(0);
  ebf::ExpiringBloomFilter filter(&clock);
  filter.ReportRead("k", 5 * kMicrosPerSecond);
  for (int i = 0; i < 1000; ++i) filter.ReportWrite("k");
  clock.Advance(6 * kMicrosPerSecond);
  filter.Maintain();
  EXPECT_FALSE(filter.Snapshot().MaybeContains("k"));
  EXPECT_EQ(filter.TrackedCount(), 0u);
}

// ---------------------------------------------------------------------------
// Simulation degenerate configurations
// ---------------------------------------------------------------------------

TEST(SimEdgeTest, ZeroWarmupAndShortDuration) {
  workload::WorkloadOptions w;
  w.num_tables = 1;
  w.docs_per_table = 50;
  w.queries_per_table = 5;
  sim::SimOptions s;
  s.num_client_instances = 1;
  s.connections_per_instance = 2;
  s.duration = SecondsToMicros(2.0);
  s.warmup = 0;
  sim::Simulation simulation(w, s);
  sim::SimResults r = simulation.Run();
  EXPECT_GT(r.total_ops, 0u);
}

TEST(SimEdgeTest, WriteOnlyWorkload) {
  workload::WorkloadOptions w;
  w.num_tables = 1;
  w.docs_per_table = 50;
  w.queries_per_table = 5;
  w.read_weight = 0.0;
  w.query_weight = 0.0;
  w.update_weight = 1.0;
  sim::SimOptions s;
  s.num_client_instances = 1;
  s.connections_per_instance = 2;
  s.duration = SecondsToMicros(5.0);
  s.warmup = SecondsToMicros(1.0);
  sim::Simulation simulation(w, s);
  sim::SimResults r = simulation.Run();
  EXPECT_EQ(r.reads.count, 0u);
  EXPECT_EQ(r.queries.count, 0u);
  EXPECT_GT(r.writes.count, 0u);
}

TEST(SimEdgeTest, RunIsIdempotent) {
  workload::WorkloadOptions w;
  w.num_tables = 1;
  w.docs_per_table = 20;
  w.queries_per_table = 2;
  sim::SimOptions s;
  s.num_client_instances = 1;
  s.connections_per_instance = 1;
  s.duration = SecondsToMicros(2.0);
  s.warmup = 0;
  sim::Simulation simulation(w, s);
  sim::SimResults first = simulation.Run();
  sim::SimResults second = simulation.Run();  // returns cached results
  EXPECT_EQ(first.total_ops, second.total_ops);
}

// ---------------------------------------------------------------------------
// Seeded chaos: the invalidation pipeline under injected faults
// ---------------------------------------------------------------------------

std::string NotificationSignature(const invalidb::Notification& n) {
  return std::to_string(static_cast<int>(n.type)) + "|" + n.query_key + "|" +
         n.record_id + "|" + std::to_string(n.event_time) + "|" +
         std::to_string(n.new_index);
}

db::ChangeEvent ChaosChange(const std::string& id, int g, Micros at) {
  db::ChangeEvent ev;
  ev.kind = db::WriteKind::kUpdate;
  ev.after.table = "posts";
  ev.after.id = id;
  ev.after.body = Doc(("{\"g\":" + std::to_string(g) + "}").c_str());
  ev.after.write_time = at;
  ev.commit_time = at;
  return ev;
}

// Runs one register-then-change script through a remote/worker pair over
// the given store, pumping until the pipeline drains, and returns the
// notification sequence.
std::vector<std::string> RunTransportScript(SimulatedClock* clock,
                                            kv::KvStore* kv,
                                            fault::FaultyKvStore* faulty) {
  invalidb::TransportOptions topts;
  topts.reliable.enabled = true;
  topts.reliable.seed = 0xabc;
  std::vector<std::string> sequence;
  invalidb::InvalidbRemote remote(
      clock, kv, "chaos",
      [&](const invalidb::Notification& n) {
        sequence.push_back(NotificationSignature(n));
      },
      topts);
  invalidb::InvalidbWorker worker(clock, kv, "chaos",
                                  invalidb::InvalidbOptions(), topts);

  db::Query q = Q("posts", R"({"g":{"$gte":1}})");
  remote.RegisterQuery(q, {}, invalidb::kEventsAll);
  for (int i = 0; i < 60; ++i) {
    remote.OnChange(ChaosChange("d" + std::to_string(i), 1 + (i % 3),
                                clock->NowMicros()));
    if (i % 4 == 0) clock->Advance(10 * kMicrosPerMilli);
  }

  // Pump until everything converges. Each round processes both queues,
  // ticks acks/retransmits, and advances time so retransmit timers and
  // held (delayed) messages fire. Bounded: the schedule is deterministic.
  for (int round = 0; round < 400; ++round) {
    worker.ProcessPending();
    remote.DrainNotifications();
    clock->Advance(150 * kMicrosPerMilli);
    worker.Tick();
    remote.Tick();
    const bool drained =
        remote.unacked_requests() == 0 && remote.pending_notifications() == 0 &&
        kv->QueueLen("chaos:requests") == 0 &&
        kv->QueueLen("chaos:notifications") == 0 &&
        (faulty == nullptr || faulty->held_count() == 0);
    if (drained && round > 4) break;
  }
  return sequence;
}

TEST(ChaosTest, LossyDuplicatingReorderingChannelConverges) {
  // Reference: perfect channel.
  SimulatedClock ref_clock(0);
  kv::KvStore ref_kv(&ref_clock);
  const std::vector<std::string> expected =
      RunTransportScript(&ref_clock, &ref_kv, nullptr);
  ASSERT_GT(expected.size(), 50u);  // every change matched the query

  // Same script over a channel that drops, duplicates, reorders, and
  // delays — at-least-once delivery plus receiver dedup must reproduce
  // the exact same notification sequence.
  fault::FaultProfile profile;
  profile.drop_rate = 0.10;
  profile.duplicate_rate = 0.10;
  profile.reorder_rate = 0.08;
  profile.delay_rate = 0.05;
  profile.max_delay = 300 * kMicrosPerMilli;
  SimulatedClock clock(0);
  fault::FaultInjector injector(0x5eed, profile);
  fault::FaultyKvStore faulty(&clock, &injector);
  const std::vector<std::string> got =
      RunTransportScript(&clock, &faulty, &faulty);

  EXPECT_EQ(got, expected);
  EXPECT_GT(injector.stats().dropped, 0u);      // faults actually fired
  EXPECT_GT(injector.stats().duplicated, 0u);
}

TEST(ChaosTest, SameSeedSameSchedule) {
  fault::FaultProfile profile;
  profile.drop_rate = 0.15;
  profile.duplicate_rate = 0.15;
  auto run = [&] {
    SimulatedClock clock(0);
    fault::FaultInjector injector(0x77, profile);
    fault::FaultyKvStore faulty(&clock, &injector);
    auto seq = RunTransportScript(&clock, &faulty, &faulty);
    return std::make_pair(seq, injector.stats().dropped);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);  // identical fault schedule, not just outcome
}

TEST(ChaosTest, PollerCrashAndRestartLosesNothing) {
  kv::KvStore kv(SystemClock::Default());
  std::atomic<int> count{0};
  invalidb::InvalidbRemote remote(SystemClock::Default(), &kv, "pc",
                                  [&](const invalidb::Notification&) {
                                    count++;
                                  });
  invalidb::InvalidbWorker worker(SystemClock::Default(), &kv, "pc");

  db::Query q = Q("posts", R"({"g":{"$gte":1}})");
  remote.RegisterQuery(q, {}, invalidb::kEventsAll);
  remote.StartPolling();
  for (int i = 0; i < 10; ++i) {
    remote.OnChange(ChaosChange("a" + std::to_string(i), 1, 0));
  }
  worker.ProcessPending();
  // Crash the poller; notifications produced while it is down stay queued.
  remote.StopPolling();
  EXPECT_FALSE(remote.polling());
  for (int i = 0; i < 10; ++i) {
    remote.OnChange(ChaosChange("b" + std::to_string(i), 1, 0));
  }
  worker.ProcessPending();
  // Restart: the backlog drains.
  remote.StartPolling();
  for (int spin = 0; spin < 1000 && count.load() < 20; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  remote.StopPolling();
  EXPECT_EQ(count.load(), 20);
}

TEST(ChaosTest, NodeKillRestartRebuildsMatchingState) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  std::vector<invalidb::Notification> received;
  invalidb::InvalidbCluster cluster(
      &clock, invalidb::InvalidbOptions(),
      [&](const invalidb::Notification& n) { received.push_back(n); });
  db::Query q = Q("posts", R"({"g":{"$gte":1}})");
  ASSERT_TRUE(cluster.RegisterQuery(q, {}, invalidb::kEventsAll).ok());

  auto commit = [&](const std::string& id, int g) {
    auto r = db.Upsert("posts", id,
                       Doc(("{\"g\":" + std::to_string(g) + "}").c_str()));
    ASSERT_TRUE(r.ok());
  };
  db.AddChangeListener(
      [&](const db::ChangeEvent& ev) { cluster.OnChange(ev); });

  commit("d1", 1);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].type, invalidb::NotificationType::kAdd);

  // Crash the (single) node; the commit below is silently lost.
  cluster.KillNode(0);
  cluster.Flush();
  commit("d2", 1);
  clock.Advance(kMicrosPerSecond);
  EXPECT_EQ(received.size(), 1u);
  EXPECT_EQ(cluster.AliveCount(), 0u);
  EXPECT_GE(cluster.stats().tasks_dropped_dead, 1u);

  // Failover: rebuild from the authoritative database.
  cluster.RestartNode(0, [&](const db::Query& rq) { return db.Execute(rq); });
  cluster.Flush();
  EXPECT_EQ(cluster.AliveCount(), 1u);
  EXPECT_EQ(cluster.stats().node_kills, 1u);
  EXPECT_EQ(cluster.stats().node_restarts, 1u);

  // d2 was recovered into the membership state: an in-place update is a
  // kChange (a node that had lost d2 would emit kAdd), and leaving the
  // result emits kRemove.
  commit("d2", 2);
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[1].type, invalidb::NotificationType::kChange);
  EXPECT_EQ(received[1].record_id, "d2");
  commit("d2", 0);
  ASSERT_EQ(received.size(), 3u);
  EXPECT_EQ(received[2].type, invalidb::NotificationType::kRemove);
}

// ---------------------------------------------------------------------------
// Degraded caching end to end: outage → TTL-capped Δ bound → recovery
// ---------------------------------------------------------------------------

TEST(ChaosTest, OracleWidensBoundWhileDegradedOnly) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  check::OracleOptions options;
  options.delta = MillisToMicros(100.0);
  check::ConsistencyOracle oracle(&clock, &db, options);
  db.AddChangeListener(
      [&](const db::ChangeEvent& ev) { oracle.OnCommit(ev); });

  auto v1 = db.Upsert("t", "x", Doc(R"({"v":1})"));
  ASSERT_TRUE(v1.ok());
  clock.Advance(kMicrosPerSecond);
  auto v2 = db.Upsert("t", "x", Doc(R"({"v":2})"));
  ASSERT_TRUE(v2.ok());

  // v1 is far beyond the 100 ms Δ bound — but a 10 s degraded budget is
  // in force, so serving it is within the degraded contract.
  clock.Advance(5 * kMicrosPerSecond);
  oracle.SetDegraded(true, SecondsToMicros(10.0));
  oracle.CheckRead("s", "t/x", true, v1.value().version);
  EXPECT_TRUE(oracle.violations().empty());
  EXPECT_EQ(oracle.degraded_checks(), 1u);

  // Recovery starts a one-budget grace window for copies issued while
  // degraded...
  oracle.SetDegraded(false, SecondsToMicros(10.0));
  oracle.CheckRead("s", "t/x", true, v1.value().version);
  EXPECT_TRUE(oracle.violations().empty());

  // ...after which the strict bound applies again.
  clock.Advance(SecondsToMicros(11.0));
  oracle.CheckRead("s", "t/x", true, v1.value().version);
  ASSERT_EQ(oracle.violations().size(), 1u);
  EXPECT_EQ(oracle.violations()[0].invariant,
            check::Invariant::kDeltaAtomicity);
}

TEST(ChaosTest, PipelineOutageDegradedCachingStaysWithinBudget) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  core::ServerOptions sopts;
  sopts.degradation.enabled = true;
  sopts.degradation.staleness_budget = 5 * kMicrosPerSecond;
  sopts.degradation.degraded_ttl_cap = 500 * kMicrosPerMilli;
  core::QuaestorServer server(&clock, &db, sopts);

  check::OracleOptions oopts;
  oopts.delta = SecondsToMicros(1.0);
  check::ConsistencyOracle oracle(&clock, &db, oopts);
  db.AddChangeListener(
      [&](const db::ChangeEvent& ev) { oracle.OnCommit(ev); });

  webcache::ExpirationCache cache(&clock);
  client::ClientOptions copts;
  copts.ebf_refresh_interval = oopts.delta;
  client::QuaestorClient c(&clock, &server, &cache, nullptr, copts);
  c.Connect();

  db::Query q = Q("posts", R"({"g":{"$gte":1}})");
  oracle.TrackQuery(q);
  ASSERT_TRUE(server.Insert("posts", "d1", Doc(R"({"g":1})")).ok());

  auto step = [&](Micros advance) {
    clock.Advance(advance);
    auto rr = c.Read("posts", "d1");
    oracle.CheckRead("s", "posts/d1", rr.status.ok(), rr.version);
    auto qr = c.ExecuteQuery(q);
    oracle.CheckQuery("s", q, qr.status.ok(), qr.etag, qr.representation);
  };

  step(10 * kMicrosPerMilli);  // healthy warm-up serve
  ASSERT_TRUE(oracle.violations().empty());

  // Hard outage: every invalidation is lost. The oracle only demands the
  // degraded budget (which must cover the server's TTL cap + Δ).
  server.SetPipelineDown(true);
  oracle.SetDegraded(true, sopts.degradation.staleness_budget);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        server
            .Update("posts", "d1",
                    db::Update().Set("g", db::Value(int64_t{2 + i})))
            .ok());
    step(300 * kMicrosPerMilli);
  }
  EXPECT_TRUE(oracle.violations().empty())
      << oracle.violations()[0].ToString();
  EXPECT_GT(oracle.degraded_checks(), 0u);
  EXPECT_GT(server.stats().change_events_dropped, 0u);
  EXPECT_GT(server.stats().degraded_reads, 0u);

  // Recovery: matchers rebuilt from the database, caches conservatively
  // flagged; after the grace window strict Δ-atomicity holds again.
  server.SetPipelineDown(false);
  oracle.SetDegraded(false);
  clock.Advance(sopts.degradation.staleness_budget + kMicrosPerSecond);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        server
            .Update("posts", "d1",
                    db::Update().Set("g", db::Value(int64_t{50 + i})))
            .ok());
    step(300 * kMicrosPerMilli);
  }
  EXPECT_TRUE(oracle.violations().empty())
      << oracle.violations()[0].ToString();
  EXPECT_FALSE(server.degraded());
}

// ---------------------------------------------------------------------------
// Overload protection end to end: flash crowd + slow origin + node kill
// ---------------------------------------------------------------------------

workload::WorkloadOptions OverloadWorkload() {
  workload::WorkloadOptions w;
  w.num_tables = 2;
  w.docs_per_table = 60;
  w.queries_per_table = 3;
  w.docs_per_query = 12;
  w.read_weight = 0.66;
  w.query_weight = 0.22;
  w.insert_weight = 0.02;
  w.update_weight = 0.10;
  // No deletes: a delete wipes every tier's copy of a (hot) key, so reads
  // of it during the storm have no stale-retained fallback by design.
  // Delete behaviour under faults is covered by the Monte Carlo chaos test.
  w.delete_weight = 0.0;
  return w;
}

sim::SimOptions OverloadSim(bool protections) {
  sim::SimOptions s;
  s.num_client_instances = 3;
  s.connections_per_instance = 2;
  s.duration = SecondsToMicros(14.0);
  s.warmup = SecondsToMicros(1.0);
  s.seed = 11;
  s.think_time = MillisToMicros(50.0);
  // A single backend worker with a 2 ms service time: ~500 req/s of real
  // capacity normally, 25 req/s during the storm below — the flash crowd
  // genuinely oversubscribes the origin instead of vanishing into slack.
  s.num_servers = 1;
  s.server_service = MillisToMicros(2.0);
  // Keep every issued TTL short so staleness across the node-kill window
  // is bounded by expiration, and the oracle's degraded budget can cover
  // the worst surviving copy.
  s.server_options.ttl_options.max_ttl = SecondsToMicros(5.0);
  s.server_options.degradation.enabled = true;

  // The storm: 8x connections on a 20x slower origin for 4 seconds. It
  // hits after several seconds of normal traffic — a flash crowd storms
  // *warm* caches; cold keys nobody ever fetched have no retained copy to
  // shed-serve and would just measure cache warmup, not overload control.
  sim::SimOptions::OverloadPhase phase;
  phase.at = SecondsToMicros(6.0);
  phase.duration = SecondsToMicros(4.0);
  phase.load_multiplier = 8.0;
  phase.origin_slowdown = 20.0;
  s.overload_phases.push_back(phase);

  if (protections) {
    s.server_options.admission.enabled = true;
    // The controller budgets the origin's HEALTHY per-request cost; storm
    // slowness reaches it through the origin_spike_fn feedback below,
    // which charges the measured extra service time to its workers. So
    // normal traffic is billed accurately (no false shedding) while the
    // slowed-down origin drives real queue pressure.
    s.server_options.admission.max_concurrent = 1;
    s.server_options.admission.service_cost = 4 * kMicrosPerMilli;
    // Queue bound sized to the deadline: a short backlog keeps admitted
    // requests inside their 1 s budget and drains quickly after the
    // storm (a deep queue would keep serving deadline-exceeded long
    // after the pressure is gone).
    s.server_options.admission.max_queue = 16;
    s.server_options.admission.target_queue_delay = 20 * kMicrosPerMilli;
    s.server_options.admission.codel_interval = 100 * kMicrosPerMilli;
    // Admission "measures" the storm: during the phase every served
    // origin visit costs ~40 ms instead of ~2 ms, and the controller is
    // charged the difference.
    s.origin_spike_fn = [phase](Micros now) -> Micros {
      if (now >= phase.at && now < phase.at + phase.duration) {
        return MillisToMicros(38.0);
      }
      return 0;
    };
    s.client_options.request_deadline = SecondsToMicros(1.0);
    s.client_options.stale_serve.enabled = true;
    s.client_options.stale_serve.ttl_cap = 1 * kMicrosPerSecond;
    s.client_options.stale_serve.max_age = 30 * kMicrosPerSecond;
    s.client_options.retry.enabled = true;
    s.client_options.retry.max_attempts = 2;
    s.client_options.retry.retry_budget = 10.0;
    s.client_options.retry.budget_refill_per_success = 0.1;
  }
  return s;
}

TEST(ChaosTest, OverloadWithNodeKillKeepsAvailabilityAndConsistency) {
  sim::SimOptions sopts = OverloadSim(/*protections=*/true);

  // Seeded origin latency spikes ride on top of the flash crowd.
  fault::FaultProfile profile;
  profile.latency_spike_rate = 0.2;
  profile.max_latency_spike = 100 * kMicrosPerMilli;
  fault::FaultInjector injector(23, profile);
  const auto base_feedback = sopts.origin_spike_fn;
  sopts.origin_spike_fn = [&injector, base_feedback](Micros now) -> Micros {
    return (base_feedback ? base_feedback(now) : 0) +
           injector.LatencySpikeFor();
  };

  sim::Simulation sim(OverloadWorkload(), sopts);
  sim::Simulation* sim_ptr = &sim;

  check::OracleOptions oopts;
  oopts.delta = sopts.client_options.ebf_refresh_interval;
  oopts.max_purge_delay = sopts.cdn_purge_latency;
  oopts.revalidate_at_cdn = sopts.client_options.revalidate_at_cdn;
  check::ConsistencyOracle oracle(&sim.clock(), &sim.database(), oopts);
  sim.database().AddChangeListener(
      [&oracle](const db::ChangeEvent& ev) { oracle.OnCommit(ev); });
  const workload::WorkloadOptions w = OverloadWorkload();
  for (size_t t = 0; t < w.num_tables; ++t) {
    for (const db::Query& q : sim.generator().QueriesFor(t)) {
      oracle.TrackQuery(q);
    }
  }

  // Every read/query is checked; stale-shed responses arrive flagged with
  // their measured age and ONLY those get a per-check widened bound — an
  // unflagged stale response would still trip the oracle.
  sim.AddOpObserver([&](const sim::OpObservation& obs) {
    const std::string session = "i" + std::to_string(obs.instance);
    switch (obs.type) {
      case workload::OpType::kRead: {
        // A shed or past-deadline failure makes no freshness claim (it is
        // not a NotFound): nothing to check.
        if (!obs.read->status.ok() && !obs.read->status.IsNotFound()) break;
        const Micros extra = obs.read->outcome.served_stale_on_shed
                                 ? obs.read->outcome.stale_entry_age
                                 : 0;
        oracle.CheckRead(session, obs.table + "/" + obs.id,
                         obs.read->status.ok(), obs.read->version, extra);
        break;
      }
      case workload::OpType::kQuery: {
        const Micros extra =
            obs.query_result->outcome.served_stale_on_shed
                ? obs.query_result->outcome.stale_entry_age
                : 0;
        oracle.CheckQuery(session, *obs.query,
                          obs.query_result->status.ok(),
                          obs.query_result->etag,
                          obs.query_result->representation, extra);
        break;
      }
      default:
        if (obs.written != nullptr) {
          oracle.OnSessionWrite(session, *obs.written);
        }
        break;
    }
  });

  // Mid-storm node kill (and later failover). The invalidation gap is
  // covered by the server's degraded TTL caps; the oracle only demands
  // the degraded budget while it lasts.
  bool killed = false;
  bool restarted = false;
  sim.AddOpObserver([&](const sim::OpObservation&) {
    const Micros now = sim_ptr->clock().NowMicros();
    if (!killed && now >= SecondsToMicros(7.0)) {
      sim_ptr->server().invalidb().KillNode(0);
      oracle.SetDegraded(true, SecondsToMicros(10.0));
      killed = true;
    }
    if (killed && !restarted && now >= SecondsToMicros(11.0)) {
      sim_ptr->server().invalidb().RestartNode(
          0, [&](const db::Query& rq) { return sim_ptr->database().Execute(rq); });
      oracle.SetDegraded(false);
      restarted = true;
    }
  });

  uint64_t read_fails = 0;
  uint64_t query_fails = 0;
  uint64_t write_fails = 0;
  sim.AddOpObserver([&](const sim::OpObservation& obs) {
    switch (obs.type) {
      case workload::OpType::kRead:
        if (!obs.read->status.ok()) read_fails++;
        break;
      case workload::OpType::kQuery:
        if (!obs.query_result->status.ok()) query_fails++;
        break;
      default:
        if (obs.written == nullptr) write_fails++;
        break;
    }
  });

  sim::SimResults r = sim.Run();

  ASSERT_TRUE(killed);
  ASSERT_TRUE(restarted);

  // The protections engaged: the origin shed work and stale-retained
  // copies absorbed part of the storm.
  EXPECT_GT(r.server_stats.shed_responses +
                r.server_stats.deadline_exceeded_responses,
            0u);
  EXPECT_GT(r.stale_shed_serves, 0u);

  // Availability floor: at least 80% of all operations still succeeded
  // across the storm, the slow origin, and the node kill.
  const uint64_t total = r.reads.count + r.queries.count + r.writes.count;
  ASSERT_GT(total, 0u);
  const double ok_ratio =
      static_cast<double>(r.ok_ops) / static_cast<double>(total);
  EXPECT_GE(ok_ratio, 0.8) << "ok " << r.ok_ops << " of " << total
                           << " (reads " << r.reads.count << " queries "
                           << r.queries.count << " writes " << r.writes.count
                           << " shed " << r.shed_ops << " deadline "
                           << r.deadline_exceeded_ops << " stale_serves "
                           << r.stale_shed_serves << " read_fails "
                           << read_fails << " query_fails " << query_fails
                           << " write_fails " << write_fails << ")";

  // Zero oracle violations: bounded staleness survived the overload.
  std::string msg;
  for (const check::Violation& v : oracle.violations()) {
    msg += v.ToString() + "\n";
  }
  EXPECT_TRUE(oracle.violations().empty()) << msg;
  EXPECT_GT(oracle.checked_reads(), 100u);
}

TEST(ChaosTest, OverloadProtectionsKeepTailLatencyBounded) {
  // Same storm twice: protections ON vs OFF. The unprotected run piles
  // every request onto the saturated origin and its tail latency
  // collapses; the protected run sheds and serves stale instead.
  auto run = [](bool protections) {
    sim::Simulation sim(OverloadWorkload(), OverloadSim(protections));
    return sim.Run();
  };
  const sim::SimResults off = run(false);
  const sim::SimResults on = run(true);

  // Unprotected: nothing fails, everything slows down.
  EXPECT_EQ(off.shed_ops + off.deadline_exceeded_ops, 0u);
  EXPECT_EQ(off.stale_shed_serves, 0u);

  // Protected: reads' p99 stays well under the unprotected collapse.
  EXPECT_LT(on.reads.latency.P99() * 2.0, off.reads.latency.P99())
      << "on p99 " << on.reads.latency.P99() << " off p99 "
      << off.reads.latency.P99();
  // And goodput does not collapse versus the unprotected run.
  EXPECT_GE(on.goodput_ops_s, 0.8 * off.goodput_ops_s);
}

}  // namespace
}  // namespace quaestor
