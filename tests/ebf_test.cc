#include <gtest/gtest.h>

#include <string>

#include "common/clock.h"
#include "ebf/expiring_bloom_filter.h"
#include "ebf/shared_ebf.h"
#include "kv/kv_store.h"

namespace quaestor::ebf {
namespace {

constexpr Micros kSecond = kMicrosPerSecond;

class EbfTest : public ::testing::Test {
 protected:
  EbfTest() : clock_(0), ebf_(&clock_) {}
  SimulatedClock clock_;
  ExpiringBloomFilter ebf_;
};

TEST_F(EbfTest, WriteWithoutReadIsNotStale) {
  // No TTL was ever issued: no cache can hold the key.
  EXPECT_FALSE(ebf_.ReportWrite("t/x"));
  EXPECT_FALSE(ebf_.IsStale("t/x"));
  EXPECT_FALSE(ebf_.Snapshot().MaybeContains("t/x"));
}

TEST_F(EbfTest, WriteDuringTtlMakesStale) {
  ebf_.ReportRead("t/x", 10 * kSecond);
  clock_.Advance(2 * kSecond);
  EXPECT_TRUE(ebf_.ReportWrite("t/x"));
  EXPECT_TRUE(ebf_.IsStale("t/x"));
  EXPECT_TRUE(ebf_.Snapshot().MaybeContains("t/x"));
}

TEST_F(EbfTest, WriteAfterTtlExpiryIsNotStale) {
  ebf_.ReportRead("t/x", 1 * kSecond);
  clock_.Advance(2 * kSecond);  // TTL passed: all caches dropped the copy
  EXPECT_FALSE(ebf_.ReportWrite("t/x"));
  EXPECT_FALSE(ebf_.IsStale("t/x"));
}

TEST_F(EbfTest, StaleKeyLeavesFilterWhenHighestTtlExpires) {
  ebf_.ReportRead("t/x", 10 * kSecond);
  clock_.Advance(1 * kSecond);
  ebf_.ReportWrite("t/x");
  EXPECT_TRUE(ebf_.IsStale("t/x"));
  // Just before the issued TTL expires the key is still flagged.
  clock_.Advance(9 * kSecond - 1);
  EXPECT_TRUE(ebf_.IsStale("t/x"));
  EXPECT_TRUE(ebf_.Snapshot().MaybeContains("t/x"));
  // At expiry the key leaves the filter.
  clock_.Advance(1);
  ebf_.Maintain();
  EXPECT_FALSE(ebf_.IsStale("t/x"));
  EXPECT_FALSE(ebf_.Snapshot().MaybeContains("t/x"));
}

TEST_F(EbfTest, ContainmentEndsAtHighestIssuedTtl) {
  // Definition 1: the key stays contained until the *highest* issued TTL
  // known at invalidation time has passed.
  ebf_.ReportRead("t/x", 5 * kSecond);
  clock_.Advance(1 * kSecond);
  ebf_.ReportRead("t/x", 10 * kSecond);  // extends expiry to t=11s
  clock_.Advance(1 * kSecond);
  ebf_.ReportWrite("t/x");  // at t=2s; stale until t=11s
  clock_.Advance(8 * kSecond);  // t=10s
  EXPECT_TRUE(ebf_.Snapshot().MaybeContains("t/x"));
  clock_.Advance(1 * kSecond);  // t=11s
  EXPECT_FALSE(ebf_.Snapshot().MaybeContains("t/x"));
}

TEST_F(EbfTest, RevalidationAfterInvalidationExtendsNothing) {
  // A fresh read during staleness issues a new TTL but must not shorten
  // or extend the existing stale window.
  ebf_.ReportRead("t/x", 10 * kSecond);
  clock_.Advance(1 * kSecond);
  ebf_.ReportWrite("t/x");  // stale until t=11s
  clock_.Advance(1 * kSecond);
  ebf_.ReportRead("t/x", 1 * kSecond);  // revalidation with short TTL
  clock_.Advance(2 * kSecond);          // t=4s: still stale (old copies live)
  EXPECT_TRUE(ebf_.IsStale("t/x"));
  clock_.Advance(7 * kSecond);  // t=11s
  ebf_.Maintain();
  EXPECT_FALSE(ebf_.IsStale("t/x"));
}

TEST_F(EbfTest, SecondWriteDuringStalenessExtendsWindow) {
  ebf_.ReportRead("t/x", 10 * kSecond);
  clock_.Advance(1 * kSecond);
  ebf_.ReportWrite("t/x");  // stale until t=11
  clock_.Advance(1 * kSecond);
  ebf_.ReportRead("t/x", 20 * kSecond);  // new copy until t=22
  clock_.Advance(1 * kSecond);
  ebf_.ReportWrite("t/x");  // stale until t=22 now
  clock_.Advance(10 * kSecond);  // t=13
  EXPECT_TRUE(ebf_.IsStale("t/x"));
  clock_.Advance(9 * kSecond);  // t=22
  ebf_.Maintain();
  EXPECT_FALSE(ebf_.IsStale("t/x"));
}

TEST_F(EbfTest, ZeroTtlReadsAreIgnored) {
  ebf_.ReportRead("t/x", 0);
  EXPECT_EQ(ebf_.TrackedCount(), 0u);
  EXPECT_FALSE(ebf_.ReportWrite("t/x"));
}

TEST_F(EbfTest, TrackedKeysAreForgottenAfterExpiry) {
  ebf_.ReportRead("t/x", 1 * kSecond);
  EXPECT_EQ(ebf_.TrackedCount(), 1u);
  clock_.Advance(2 * kSecond);
  ebf_.Maintain();
  EXPECT_EQ(ebf_.TrackedCount(), 0u);
}

TEST_F(EbfTest, StaleCountTracksFilterPopulation) {
  for (int i = 0; i < 10; ++i) {
    ebf_.ReportRead("t/k" + std::to_string(i), 10 * kSecond);
  }
  clock_.Advance(1 * kSecond);
  for (int i = 0; i < 5; ++i) {
    ebf_.ReportWrite("t/k" + std::to_string(i));
  }
  EXPECT_EQ(ebf_.StaleCount(), 5u);
  const EbfStats stats = ebf_.stats();
  EXPECT_EQ(stats.keys_added, 5u);
  EXPECT_EQ(stats.reads_reported, 10u);
  EXPECT_EQ(stats.invalidations_reported, 5u);
  clock_.Advance(10 * kSecond);
  ebf_.Maintain();
  EXPECT_EQ(ebf_.StaleCount(), 0u);
  EXPECT_EQ(ebf_.stats().keys_expired, 5u);
}

TEST_F(EbfTest, RepeatedWritesAddOnlyOnce) {
  ebf_.ReportRead("t/x", 10 * kSecond);
  clock_.Advance(1 * kSecond);
  ebf_.ReportWrite("t/x");
  ebf_.ReportWrite("t/x");
  ebf_.ReportWrite("t/x");
  EXPECT_EQ(ebf_.stats().keys_added, 1u);
  // One expiry must fully clear it (counting filter balance).
  clock_.Advance(10 * kSecond);
  ebf_.Maintain();
  EXPECT_FALSE(ebf_.Snapshot().MaybeContains("t/x"));
}

TEST_F(EbfTest, SnapshotIsImmutableCopy) {
  ebf_.ReportRead("t/x", 10 * kSecond);
  BloomFilter snap = ebf_.Snapshot();
  clock_.Advance(1 * kSecond);
  ebf_.ReportWrite("t/x");
  // The old snapshot does not see the new staleness (clients hold
  // immutable copies until they refresh, §3.3).
  EXPECT_FALSE(snap.MaybeContains("t/x"));
  EXPECT_TRUE(ebf_.Snapshot().MaybeContains("t/x"));
}

// ---------------------------------------------------------------------------
// Theorem 1 (∆-atomicity) — property sweep over refresh intervals
// ---------------------------------------------------------------------------

class DeltaAtomicityTest : public ::testing::TestWithParam<int> {};

TEST_P(DeltaAtomicityTest, FilterContainsEveryResultStaleSinceSnapshot) {
  // Construction: keys are read (cached), then written. Any key whose
  // cached TTL outlives its write time must be in a snapshot taken at any
  // t1 in between — a client using that snapshot can never unknowingly
  // read data staler than t2 − t1 (Theorem 1).
  const int delta_s = GetParam();
  SimulatedClock clock(0);
  ExpiringBloomFilter ebf(&clock);

  // Issue TTLs at t=0 with varying lengths.
  for (int i = 0; i < 50; ++i) {
    ebf.ReportRead("t/k" + std::to_string(i),
                   (i + 1) * kSecond);  // expire at i+1 seconds
  }
  // Writes at t=1s invalidate everything.
  clock.Advance(1 * kSecond);
  for (int i = 0; i < 50; ++i) {
    ebf.ReportWrite("t/k" + std::to_string(i));
  }
  // Snapshot at t1 = 1s + delta.
  clock.Advance(delta_s * kSecond);
  BloomFilter snap = ebf.Snapshot();
  for (int i = 0; i < 50; ++i) {
    const std::string key = "t/k" + std::to_string(i);
    const Micros ttl_expiry = (i + 1) * kSecond;
    if (ttl_expiry > clock.NowMicros()) {
      // Some cache may still serve the stale copy: must be flagged.
      EXPECT_TRUE(snap.MaybeContains(key)) << key << " delta=" << delta_s;
    }
    // (Keys whose TTL passed may or may not be flagged — false positives
    // are allowed, false negatives are not.)
  }
}

INSTANTIATE_TEST_SUITE_P(Deltas, DeltaAtomicityTest,
                         ::testing::Values(0, 1, 5, 20, 45));

// ---------------------------------------------------------------------------
// PartitionedEbf
// ---------------------------------------------------------------------------

TEST(PartitionedEbfTest, RoutesByTable) {
  SimulatedClock clock(0);
  PartitionedEbf ebf(&clock);
  ebf.ReportRead("users/1", 10 * kSecond);
  ebf.ReportRead("posts/1", 10 * kSecond);
  ebf.ReportRead("q:posts?group $eq 1", 10 * kSecond);
  EXPECT_EQ(ebf.PartitionCount(), 2u);  // users, posts
  EXPECT_EQ(ebf.Partition("posts")->TrackedCount(), 2u);
  EXPECT_EQ(ebf.Partition("users")->TrackedCount(), 1u);
}

TEST(PartitionedEbfTest, AggregateIsUnionOfPartitions) {
  SimulatedClock clock(0);
  PartitionedEbf ebf(&clock);
  ebf.ReportRead("a/1", 10 * kSecond);
  ebf.ReportRead("b/1", 10 * kSecond);
  clock.Advance(1 * kSecond);
  ebf.ReportWrite("a/1");
  ebf.ReportWrite("b/1");
  BloomFilter agg = ebf.AggregateSnapshot();
  EXPECT_TRUE(agg.MaybeContains("a/1"));
  EXPECT_TRUE(agg.MaybeContains("b/1"));
  EXPECT_EQ(ebf.StaleCount(), 2u);
}

TEST(PartitionedEbfTest, QueryKeysShareTablePartitionWithRecords) {
  SimulatedClock clock(0);
  PartitionedEbf ebf(&clock);
  ebf.ReportRead("q:posts?group $eq 1", 10 * kSecond);
  ebf.ReportRead("posts/1", 10 * kSecond);
  EXPECT_EQ(ebf.PartitionCount(), 1u);
}

// ---------------------------------------------------------------------------
// SharedEbf (kv-backed) — behavioural equivalence with the in-memory EBF
// ---------------------------------------------------------------------------

class SharedEbfTest : public ::testing::Test {
 protected:
  SharedEbfTest() : clock_(0), kv_(&clock_), ebf_(&clock_, &kv_) {}
  SimulatedClock clock_;
  kv::KvStore kv_;
  SharedEbf ebf_;
};

TEST_F(SharedEbfTest, BasicStaleLifecycle) {
  ebf_.ReportRead("t/x", 10 * kSecond);
  clock_.Advance(1 * kSecond);
  EXPECT_TRUE(ebf_.ReportWrite("t/x"));
  EXPECT_TRUE(ebf_.IsStale("t/x"));
  EXPECT_TRUE(ebf_.Snapshot().MaybeContains("t/x"));
  clock_.Advance(10 * kSecond);
  ebf_.Maintain();
  EXPECT_FALSE(ebf_.IsStale("t/x"));
  EXPECT_FALSE(ebf_.Snapshot().MaybeContains("t/x"));
}

TEST_F(SharedEbfTest, WriteWithoutTtlNotStale) {
  EXPECT_FALSE(ebf_.ReportWrite("t/x"));
  EXPECT_FALSE(ebf_.IsStale("t/x"));
}

TEST_F(SharedEbfTest, MatchesInMemoryVariantOnRandomTrace) {
  // Drive both implementations with an identical trace; their observable
  // stale sets must agree at every step.
  ExpiringBloomFilter reference(&clock_);
  const int kKeys = 20;
  uint64_t state = 12345;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int step = 0; step < 400; ++step) {
    const std::string key = "t/k" + std::to_string(next() % kKeys);
    switch (next() % 3) {
      case 0: {
        const Micros ttl = static_cast<Micros>(next() % 10 + 1) * kSecond;
        ebf_.ReportRead(key, ttl);
        reference.ReportRead(key, ttl);
        break;
      }
      case 1:
        EXPECT_EQ(ebf_.ReportWrite(key), reference.ReportWrite(key))
            << "step " << step;
        break;
      default:
        clock_.Advance(static_cast<Micros>(next() % 3) * kSecond);
        break;
    }
    EXPECT_EQ(ebf_.IsStale(key), reference.IsStale(key)) << "step " << step;
  }
}

TEST_F(SharedEbfTest, StateLivesInKvStore) {
  ebf_.ReportRead("t/x", 10 * kSecond);
  clock_.Advance(1 * kSecond);
  ebf_.ReportWrite("t/x");
  // Another SharedEbf over the same KV store observes the same state.
  SharedEbf other(&clock_, &kv_);
  EXPECT_TRUE(other.IsStale("t/x"));
  EXPECT_TRUE(other.Snapshot().MaybeContains("t/x"));
}

}  // namespace
}  // namespace quaestor::ebf
