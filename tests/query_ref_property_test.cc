// Property test: db::Query matching agrees with an independently written
// naive reference evaluator on randomized documents and predicate trees,
// and survives a ToSpec -> Parse round trip. The reference implementation
// below deliberately shares no code with src/db/query.cc — it re-derives
// the documented MongoDB-subset semantics (dot-paths, array membership for
// $eq, type-bracketed ordering, $in/$nin, $contains, $exists, $prefix).
#include <charconv>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "db/query.h"
#include "db/value.h"

namespace quaestor::db {
namespace {

// -- Naive reference evaluator --

const Value* RefFind(const Value* v, const std::string& path) {
  size_t start = 0;
  while (v != nullptr) {
    const size_t dot = path.find('.', start);
    const std::string seg =
        path.substr(start, dot == std::string::npos ? dot : dot - start);
    if (seg.empty()) return nullptr;
    if (v->is_object()) {
      const Object& obj = v->as_object();
      const auto it = obj.find(seg);
      v = it == obj.end() ? nullptr : &it->second;
    } else if (v->is_array()) {
      size_t idx = 0;
      const auto [p, ec] =
          std::from_chars(seg.data(), seg.data() + seg.size(), idx);
      if (ec != std::errc() || p != seg.data() + seg.size() ||
          idx >= v->as_array().size()) {
        return nullptr;
      }
      v = &v->as_array()[idx];
    } else {
      return nullptr;
    }
    if (dot == std::string::npos) return v;
    start = dot + 1;
  }
  return nullptr;
}

bool RefEq(const Value* field, const Value& operand) {
  if (field == nullptr) return operand.is_null();
  if (*field == operand) return true;
  if (field->is_array() && !operand.is_array()) {
    for (const Value& e : field->as_array()) {
      if (e == operand) return true;
    }
  }
  return false;
}

bool RefLeaf(const Value* field, CompareOp op, const Value& operand) {
  switch (op) {
    case CompareOp::kEq:
      return RefEq(field, operand);
    case CompareOp::kNe:
      return !RefEq(field, operand);
    case CompareOp::kGt:
    case CompareOp::kGte:
    case CompareOp::kLt:
    case CompareOp::kLte: {
      if (field == nullptr) return false;
      const bool comparable =
          (field->is_number() && operand.is_number()) ||
          (field->is_string() && operand.is_string()) ||
          (field->is_bool() && operand.is_bool());
      if (!comparable) return false;
      const int c = Value::Compare(*field, operand);
      if (op == CompareOp::kGt) return c > 0;
      if (op == CompareOp::kGte) return c >= 0;
      if (op == CompareOp::kLt) return c < 0;
      return c <= 0;
    }
    case CompareOp::kIn: {
      if (!operand.is_array()) return false;
      for (const Value& e : operand.as_array()) {
        if (RefEq(field, e)) return true;
      }
      return false;
    }
    case CompareOp::kNin:
      return !RefLeaf(field, CompareOp::kIn, operand);
    case CompareOp::kContains: {
      if (field == nullptr || !field->is_array()) return false;
      for (const Value& e : field->as_array()) {
        if (e == operand) return true;
      }
      return false;
    }
    case CompareOp::kExists: {
      const bool want = operand.is_bool() ? operand.as_bool() : true;
      return (field != nullptr) == want;
    }
    case CompareOp::kPrefix:
      return field != nullptr && field->is_string() && operand.is_string() &&
             field->as_string().compare(0, operand.as_string().size(),
                                        operand.as_string()) == 0;
  }
  return false;
}

bool RefMatches(const Predicate& p, const Value& doc) {
  switch (p.kind) {
    case Predicate::Kind::kTrue:
      return true;
    case Predicate::Kind::kCompare:
      return RefLeaf(RefFind(&doc, p.path), p.op, p.operand);
    case Predicate::Kind::kAnd:
      for (const Predicate& c : p.children) {
        if (!RefMatches(c, doc)) return false;
      }
      return true;
    case Predicate::Kind::kOr:
      for (const Predicate& c : p.children) {
        if (RefMatches(c, doc)) return true;
      }
      return false;
    case Predicate::Kind::kNot:
      return !RefMatches(p.children[0], doc);
  }
  return false;
}

// -- Random generation --

const char* const kStrings[] = {"alpha", "alps",  "beta", "bet",
                                "gamma", "gam",   "",     "delta"};
const char* const kPaths[] = {"a", "b", "s", "tags", "nested.x",
                              "nested.y", "tags.0", "missing"};

Value RandomScalar(Rng& rng) {
  switch (rng.NextUint64(5)) {
    case 0:
      return Value(nullptr);
    case 1:
      return Value(rng.NextBool(0.5));
    case 2:
      return Value(static_cast<int64_t>(rng.NextUint64(6)));
    case 3:
      return Value(static_cast<double>(rng.NextUint64(6)) / 2.0);
    default:
      return Value(kStrings[rng.NextUint64(8)]);
  }
}

Value RandomDoc(Rng& rng) {
  Object doc;
  if (rng.NextBool(0.9)) doc["a"] = RandomScalar(rng);
  if (rng.NextBool(0.8)) doc["b"] = RandomScalar(rng);
  if (rng.NextBool(0.8)) doc["s"] = Value(kStrings[rng.NextUint64(8)]);
  if (rng.NextBool(0.7)) {
    Array tags;
    const size_t n = rng.NextUint64(4);
    for (size_t i = 0; i < n; ++i) tags.push_back(RandomScalar(rng));
    doc["tags"] = Value(std::move(tags));
  }
  if (rng.NextBool(0.6)) {
    Object nested;
    if (rng.NextBool(0.8)) nested["x"] = RandomScalar(rng);
    if (rng.NextBool(0.5)) nested["y"] = RandomScalar(rng);
    doc["nested"] = Value(std::move(nested));
  }
  return Value(std::move(doc));
}

Predicate RandomPredicate(Rng& rng, int depth) {
  const uint64_t roll = rng.NextUint64(depth > 0 ? 10 : 7);
  if (roll < 7) {
    const std::string path = kPaths[rng.NextUint64(8)];
    const CompareOp ops[] = {
        CompareOp::kEq,  CompareOp::kNe,       CompareOp::kGt,
        CompareOp::kGte, CompareOp::kLt,       CompareOp::kLte,
        CompareOp::kIn,  CompareOp::kNin,      CompareOp::kContains,
        CompareOp::kExists, CompareOp::kPrefix};
    const CompareOp op = ops[rng.NextUint64(11)];
    Value operand;
    if (op == CompareOp::kIn || op == CompareOp::kNin) {
      Array elems;
      const size_t n = 1 + rng.NextUint64(3);
      for (size_t i = 0; i < n; ++i) elems.push_back(RandomScalar(rng));
      operand = Value(std::move(elems));
    } else if (op == CompareOp::kExists) {
      operand = Value(rng.NextBool(0.5));
    } else {
      operand = RandomScalar(rng);
    }
    return Predicate::Compare(path, op, operand);
  }
  if (roll < 8) {  // NOT
    return Predicate::Not(RandomPredicate(rng, depth - 1));
  }
  std::vector<Predicate> children;
  const size_t n = 2 + rng.NextUint64(2);
  for (size_t i = 0; i < n; ++i) {
    children.push_back(RandomPredicate(rng, depth - 1));
  }
  return roll < 9 ? Predicate::And(std::move(children))
                  : Predicate::Or(std::move(children));
}

// -- Properties --

TEST(QueryReferenceTest, MatchesAgreesWithNaiveEvaluator) {
  Rng rng(20240806);
  size_t matched = 0, total = 0;
  for (int round = 0; round < 300; ++round) {
    const Predicate p = RandomPredicate(rng, 3);
    const Query q("t", p);
    for (int d = 0; d < 25; ++d) {
      const Value doc = RandomDoc(rng);
      const bool expect = RefMatches(p, doc);
      ASSERT_EQ(q.Matches(doc), expect)
          << "predicate " << p.Normalize() << "\ndoc " << doc.ToJson();
      matched += expect ? 1 : 0;
      ++total;
    }
  }
  // The generator must exercise both outcomes, or the property is vacuous.
  EXPECT_GT(matched, total / 20);
  EXPECT_LT(matched, total - total / 20);
}

TEST(QueryReferenceTest, ToSpecParseRoundTripPreservesSemantics) {
  Rng rng(97);
  for (int round = 0; round < 200; ++round) {
    const Predicate p = RandomPredicate(rng, 3);
    const Query q("t", p);

    // Predicate-level: filter spec -> Parse.
    auto reparsed = Query::Parse("t", p.ToSpec());
    ASSERT_TRUE(reparsed.ok())
        << reparsed.status().ToString() << " for " << p.ToSpec().ToJson();
    // Query-level: full wire spec -> FromSpec, via JSON text.
    auto from_json = Value::FromJson(q.ToSpec().ToJson());
    ASSERT_TRUE(from_json.ok());
    auto rewired = Query::FromSpec(from_json.value());
    ASSERT_TRUE(rewired.ok()) << rewired.status().ToString();

    for (int d = 0; d < 20; ++d) {
      const Value doc = RandomDoc(rng);
      const bool expect = RefMatches(p, doc);
      ASSERT_EQ(reparsed.value().Matches(doc), expect)
          << "Parse(ToSpec) diverges for " << p.Normalize() << "\ndoc "
          << doc.ToJson();
      ASSERT_EQ(rewired.value().Matches(doc), expect)
          << "FromSpec(ToSpec) diverges for " << p.Normalize() << "\ndoc "
          << doc.ToJson();
    }
    // Normalization must survive the round trip (shared cache keys).
    EXPECT_EQ(reparsed.value().NormalizedKey(), q.NormalizedKey());
  }
}

TEST(QueryReferenceTest, PrefixOperatorMatchesAnchoredPrefixOnly) {
  Rng rng(11);
  for (int round = 0; round < 500; ++round) {
    const std::string s = kStrings[rng.NextUint64(8)];
    const std::string prefix = kStrings[rng.NextUint64(8)];
    const Predicate p =
        Predicate::Compare("s", CompareOp::kPrefix, Value(prefix));
    Object doc;
    doc["s"] = Value(s);
    const bool expect = s.compare(0, prefix.size(), prefix) == 0;
    EXPECT_EQ(p.Matches(Value(std::move(doc))), expect)
        << "s=" << s << " prefix=" << prefix;
  }
}

}  // namespace
}  // namespace quaestor::db
