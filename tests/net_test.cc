// Unit and failure-edge tests for the real-socket serving layer
// (src/net): framing round trips and torn/oversized streams, HTTP codec
// byte round trips, the epoll event loop, raw TCP echo, frame hub
// pub/sub with reconnect + subscription replay, slow-reader
// backpressure (priority shedding), and a connection reset in the
// middle of a batched notification stream recovered by the reliable
// queue. Every listener binds an ephemeral port (Listen(0)) so fixtures
// never collide on a shared machine.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "invalidb/reliable_queue.h"
#include "net/event_loop.h"
#include "net/framing.h"
#include "net/http_codec.h"
#include "net/queue_bridge.h"
#include "net/tcp.h"

namespace quaestor::net {
namespace {

/// Polls `cond` until it holds or `timeout_ms` elapses (real time — the
/// net layer runs on real sockets and threads, not the simulated clock).
bool WaitFor(const std::function<bool()>& cond, int64_t timeout_ms = 5000) {
  const int64_t deadline = EventLoop::MonotonicNow() + timeout_ms * 1000;
  while (EventLoop::MonotonicNow() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return cond();
}

// ---------------------------------------------------------------------------
// Framing

TEST(FramingTest, RoundTripPreservesAllFields) {
  Frame in{0, "invalidb:requests", std::string("payload\0with\xff binary", 20)};
  const std::string wire = EncodeFrame(in);

  Frame out;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(wire, &out, &consumed), FrameDecode::kFrame);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(out.priority, in.priority);
  EXPECT_EQ(out.channel, in.channel);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(FramingTest, TornFrameNeedsMoreAtEveryPrefixLength) {
  const std::string wire = EncodeFrame(Frame{2, "notif", "hello world"});
  // Every strict prefix is a torn frame, never an error and never a
  // bogus decode.
  for (size_t len = 0; len < wire.size(); ++len) {
    Frame out;
    size_t consumed = 0;
    EXPECT_EQ(DecodeFrame(std::string_view(wire).substr(0, len), &out,
                          &consumed),
              FrameDecode::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(FramingTest, BackToBackFramesDecodeSequentially) {
  std::string wire;
  AppendFrame(&wire, Frame{1, "a", "first"});
  AppendFrame(&wire, Frame{3, "bb", "second"});

  Frame f1;
  size_t c1 = 0;
  ASSERT_EQ(DecodeFrame(wire, &f1, &c1), FrameDecode::kFrame);
  EXPECT_EQ(f1.channel, "a");
  EXPECT_EQ(f1.payload, "first");

  Frame f2;
  size_t c2 = 0;
  ASSERT_EQ(DecodeFrame(std::string_view(wire).substr(c1), &f2, &c2),
            FrameDecode::kFrame);
  EXPECT_EQ(f2.channel, "bb");
  EXPECT_EQ(f2.payload, "second");
  EXPECT_EQ(c1 + c2, wire.size());
}

TEST(FramingTest, OversizedAndMalformedHeadersAreErrors) {
  // Length-of-rest beyond the 16 MB cap: drop the stream, don't wait.
  std::string oversized;
  const uint32_t huge = (16u << 20) + 1;
  oversized.push_back(static_cast<char>(huge >> 24));
  oversized.push_back(static_cast<char>(huge >> 16));
  oversized.push_back(static_cast<char>(huge >> 8));
  oversized.push_back(static_cast<char>(huge));
  Frame out;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(oversized, &out, &consumed), FrameDecode::kError);

  // Length-of-rest too small to hold priority + channel length.
  const std::string tiny{'\0', '\0', '\0', '\2', '\0', '\0'};
  EXPECT_EQ(DecodeFrame(tiny, &out, &consumed), FrameDecode::kError);

  // Channel length overrunning the frame body.
  std::string overrun{'\0', '\0', '\0', '\4'};
  overrun.push_back('\2');   // priority
  overrun.push_back('\0');   // channel length hi
  overrun.push_back('\x7f');  // channel length lo: 127 > remaining 1
  overrun.push_back('x');
  EXPECT_EQ(DecodeFrame(overrun, &out, &consumed), FrameDecode::kError);
}

// ---------------------------------------------------------------------------
// HTTP codec

TEST(HttpCodecTest, WireResponseRoundTripsEveryStatusShape) {
  std::vector<WireResponse> cases;
  {
    WireResponse ok;
    ok.http.ok = true;
    ok.http.body = R"({"x":1})";
    ok.http.etag = 123456789;
    ok.http.ttl = 2 * kMicrosPerSecond + 250 * kMicrosPerMilli;
    ok.http.last_modified = 1700000000 * kMicrosPerSecond + 42;
    cases.push_back(ok);
  }
  {
    WireResponse nostore;
    nostore.http.ok = true;
    nostore.http.body = "b";
    nostore.http.etag = 7;
    nostore.http.ttl = 0;  // uncacheable
    cases.push_back(nostore);
  }
  {
    WireResponse nm;
    nm.http.not_modified = true;
    nm.http.etag = 99;
    nm.http.ttl = kMicrosPerSecond;
    cases.push_back(nm);
  }
  {
    WireResponse shed;
    shed.http.shed = true;
    cases.push_back(shed);
  }
  {
    WireResponse stale;
    stale.http.ok = true;
    stale.http.body = "old";
    stale.http.etag = 5;
    stale.http.ttl = kMicrosPerSecond;
    stale.served_stale_on_shed = true;
    stale.stale_entry_age = 1234567;
    cases.push_back(stale);
  }
  {
    WireResponse unavailable;
    unavailable.http.unavailable = true;
    cases.push_back(unavailable);
  }
  {
    WireResponse deadline;
    deadline.http.deadline_exceeded = true;
    cases.push_back(deadline);
  }

  for (size_t i = 0; i < cases.size(); ++i) {
    const WireResponse& in = cases[i];
    const std::string wire = EncodeHttpResponse(ToHttpMessage(in));
    HttpMessage msg;
    size_t consumed = 0;
    ASSERT_EQ(DecodeHttpResponse(wire, &msg, &consumed), HttpDecode::kComplete)
        << "case " << i;
    EXPECT_EQ(consumed, wire.size());
    const WireResponse out = FromHttpMessage(msg);
    EXPECT_EQ(out.http.ok, in.http.ok) << "case " << i;
    EXPECT_EQ(out.http.not_modified, in.http.not_modified) << "case " << i;
    EXPECT_EQ(out.http.unavailable, in.http.unavailable) << "case " << i;
    EXPECT_EQ(out.http.shed, in.http.shed) << "case " << i;
    EXPECT_EQ(out.http.deadline_exceeded, in.http.deadline_exceeded)
        << "case " << i;
    EXPECT_EQ(out.http.body, in.http.body) << "case " << i;
    if (in.http.ok || in.http.not_modified) {
      EXPECT_EQ(out.http.etag, in.http.etag) << "case " << i;
      // X-TTL-Us / X-Last-Modified-Us keep the exact microseconds that
      // Cache-Control's whole seconds would truncate.
      EXPECT_EQ(out.http.ttl, in.http.ttl) << "case " << i;
      EXPECT_EQ(out.http.last_modified, in.http.last_modified) << "case " << i;
    }
    EXPECT_EQ(out.served_stale_on_shed, in.served_stale_on_shed)
        << "case " << i;
    EXPECT_EQ(out.stale_entry_age, in.stale_entry_age) << "case " << i;
  }
}

TEST(HttpCodecTest, ResponseHeadersCarryStandardCachingSemantics) {
  WireResponse r;
  r.http.ok = true;
  r.http.body = "body";
  r.http.etag = 42;
  r.http.ttl = 2500 * kMicrosPerMilli;
  const HttpMessage msg = ToHttpMessage(r);
  EXPECT_EQ(msg.status, 200);
  EXPECT_EQ(msg.headers.at("etag"), "\"42\"");
  // floor(2.5s) — real HTTP caches honour whole seconds.
  EXPECT_EQ(msg.headers.at("cache-control"), "max-age=2");

  WireResponse uncacheable;
  uncacheable.http.ok = true;
  uncacheable.http.ttl = 0;
  EXPECT_EQ(ToHttpMessage(uncacheable).headers.at("cache-control"),
            "no-store");

  WireResponse nm;
  nm.http.not_modified = true;
  EXPECT_EQ(ToHttpMessage(nm).status, 304);
  WireResponse shed;
  shed.http.shed = true;
  EXPECT_EQ(ToHttpMessage(shed).status, 429);
  WireResponse un;
  un.http.unavailable = true;
  EXPECT_EQ(ToHttpMessage(un).status, 503);
  WireResponse dl;
  dl.http.deadline_exceeded = true;
  EXPECT_EQ(ToHttpMessage(dl).status, 504);
}

TEST(HttpCodecTest, FetchRequestRoundTripsConditionalAndContextHeaders) {
  webcache::HttpRequest in;
  in.key = "table/id with space&odd?chars";
  in.has_if_none_match = true;
  in.if_none_match = 987654321;
  in.auth_token = "tok-123";
  in.context.deadline = 55555555;
  in.context.priority = Priority::kLow;

  const std::string wire = EncodeHttpRequest(ToHttpMessage(in));
  HttpMessage msg;
  size_t consumed = 0;
  ASSERT_EQ(DecodeHttpRequest(wire, &msg, &consumed), HttpDecode::kComplete);
  EXPECT_EQ(msg.method, "GET");
  EXPECT_EQ(msg.path, "/fetch");

  const webcache::HttpRequest out = FetchRequestFromHttpMessage(msg);
  EXPECT_EQ(out.key, in.key);  // percent-encoding is lossless
  EXPECT_TRUE(out.has_if_none_match);
  EXPECT_EQ(out.if_none_match, in.if_none_match);
  EXPECT_EQ(out.auth_token, in.auth_token);
  EXPECT_EQ(out.context.deadline, in.context.deadline);
  EXPECT_EQ(out.context.priority, in.context.priority);

  // Unconditional anonymous request: none of the optional headers leak.
  webcache::HttpRequest plain;
  plain.key = "t/1";
  const HttpMessage pmsg = ToHttpMessage(plain);
  EXPECT_EQ(pmsg.headers.count("if-none-match"), 0u);
  EXPECT_EQ(pmsg.headers.count("authorization"), 0u);
  EXPECT_EQ(pmsg.headers.count("x-deadline-us"), 0u);
  EXPECT_EQ(pmsg.headers.count("x-priority"), 0u);
  const webcache::HttpRequest pout =
      FetchRequestFromHttpMessage(ToHttpMessage(plain));
  EXPECT_FALSE(pout.has_if_none_match);
  EXPECT_EQ(pout.context.deadline, 0);
  EXPECT_EQ(pout.context.priority, Priority::kNormal);
}

TEST(HttpCodecTest, PipelinedAndTornMessagesDecodeIncrementally) {
  WireResponse a;
  a.http.ok = true;
  a.http.body = "first";
  a.http.etag = 1;
  WireResponse b;
  b.http.ok = true;
  b.http.body = "second";
  b.http.etag = 2;
  const std::string wire =
      EncodeHttpResponse(ToHttpMessage(a)) + EncodeHttpResponse(ToHttpMessage(b));

  // Feed a torn prefix: body cut mid-way must return kNeedMore.
  HttpMessage partial;
  size_t consumed = 0;
  EXPECT_EQ(DecodeHttpResponse(std::string_view(wire).substr(0, 30), &partial,
                               &consumed),
            HttpDecode::kNeedMore);

  HttpMessage m1;
  ASSERT_EQ(DecodeHttpResponse(wire, &m1, &consumed), HttpDecode::kComplete);
  EXPECT_EQ(m1.body, "first");
  HttpMessage m2;
  size_t c2 = 0;
  ASSERT_EQ(DecodeHttpResponse(std::string_view(wire).substr(consumed), &m2,
                               &c2),
            HttpDecode::kComplete);
  EXPECT_EQ(m2.body, "second");
  EXPECT_EQ(consumed + c2, wire.size());
}

// ---------------------------------------------------------------------------
// Event loop

TEST(EventLoopTest, PostedFunctionsTimersAndCancellation) {
  EventLoop loop;
  ASSERT_TRUE(loop.Start());

  std::atomic<int> ran{0};
  loop.RunInLoopSync([&] { ran = 1; });
  EXPECT_EQ(ran.load(), 1);

  std::atomic<bool> fired{false};
  loop.AddTimer(2000, [&] { fired = true; });
  EXPECT_TRUE(WaitFor([&] { return fired.load(); }));

  std::atomic<bool> cancelled_fired{false};
  const EventLoop::TimerId id =
      loop.AddTimer(20 * 1000, [&] { cancelled_fired = true; });
  loop.CancelTimer(id);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_FALSE(cancelled_fired.load());

  // Posting from inside the loop runs inline (no self-deadlock).
  std::atomic<bool> nested{false};
  loop.RunInLoopSync([&] { loop.RunInLoop([&] { nested = true; }); });
  EXPECT_TRUE(WaitFor([&] { return nested.load(); }));
  loop.Stop();
}

// ---------------------------------------------------------------------------
// TCP

TEST(TcpTest, EchoOverLoopbackEphemeralPort) {
  EventLoop loop;
  ASSERT_TRUE(loop.Start());

  auto listener = std::make_unique<TcpListener>(&loop);
  std::vector<std::shared_ptr<TcpConnection>> conns;  // loop-thread only
  listener->set_on_accept([&](int fd) {
    std::shared_ptr<TcpConnection> conn = TcpConnection::Adopt(&loop, fd);
    conns.push_back(conn);
    std::weak_ptr<TcpConnection> weak = conn;
    conn->set_on_data([weak] {
      if (auto c = weak.lock()) {
        c->Send(c->input());
        c->input().clear();
      }
    });
  });
  bool listening = false;
  loop.RunInLoopSync([&] { listening = listener->Listen(0); });
  ASSERT_TRUE(listening);
  const uint16_t port = listener->port();
  ASSERT_NE(port, 0);

  const int fd = DialLoopbackBlocking(port);
  ASSERT_GE(fd, 0);
  const std::string msg = "ping over a real socket";
  ASSERT_EQ(write(fd, msg.data(), msg.size()),
            static_cast<ssize_t>(msg.size()));
  std::string got;
  char buf[256];
  while (got.size() < msg.size()) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    ASSERT_GT(n, 0);
    got.append(buf, static_cast<size_t>(n));
  }
  EXPECT_EQ(got, msg);
  close(fd);

  loop.RunInLoopSync([&] {
    for (auto& c : conns) c->Close();
    conns.clear();
    listener->Close();
  });
  loop.Stop();
}

TEST(TcpTest, EphemeralListenersNeverCollide) {
  // The port-collision-safe fixture idiom: every Listen(0) gets its own
  // kernel-assigned port, reported via port().
  EventLoop loop;
  ASSERT_TRUE(loop.Start());
  FrameHub hub1(&loop, 256u << 10, 1u << 20);
  FrameHub hub2(&loop, 256u << 10, 1u << 20);
  ASSERT_TRUE(hub1.Listen(0));
  ASSERT_TRUE(hub2.Listen(0));
  EXPECT_NE(hub1.port(), 0);
  EXPECT_NE(hub2.port(), 0);
  EXPECT_NE(hub1.port(), hub2.port());
  hub1.Close();
  hub2.Close();
  loop.Stop();
}

// ---------------------------------------------------------------------------
// Frame hub / frame client

class FrameFixture : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(loop_.Start()); }
  void TearDown() override { loop_.Stop(); }

  EventLoop loop_;
};

TEST_F(FrameFixture, HubFansOutToSubscribersAndReceivesLocally) {
  FrameHub hub(&loop_, 256u << 10, 1u << 20);
  std::mutex mu;
  std::vector<std::string> hub_got;
  hub.Subscribe("req", [&](const Frame& f) {
    std::lock_guard<std::mutex> lock(mu);
    hub_got.push_back(f.channel + "=" + f.payload);
  });
  ASSERT_TRUE(hub.Listen(0));

  FrameClient client(&loop_, hub.port(), 5 * kMicrosPerMilli);
  std::vector<std::string> client_got;
  client.Subscribe("notif", [&](const Frame& f) {
    std::lock_guard<std::mutex> lock(mu);
    client_got.push_back(f.channel + "=" + f.payload);
  });
  client.Connect();
  ASSERT_TRUE(WaitFor([&] { return hub.connections() == 1; }));

  // Hub → client on a subscribed channel; an unrelated channel is not
  // delivered.
  hub.Send("notif:1", "hello", 2);
  hub.Send("other", "ignored", 2);
  ASSERT_TRUE(WaitFor([&] {
    std::lock_guard<std::mutex> lock(mu);
    return client_got.size() == 1;
  }));
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(client_got[0], "notif:1=hello");
  }

  // Client → hub local subscription.
  EXPECT_TRUE(client.Send("req:7", "work", 0));
  ASSERT_TRUE(WaitFor([&] {
    std::lock_guard<std::mutex> lock(mu);
    return hub_got.size() == 1;
  }));
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(hub_got[0], "req:7=work");
  }
  client.Close();
  hub.Close();
}

TEST_F(FrameFixture, TornFrameMidEnvelopeOverSocketDeliversExactlyOnce) {
  FrameHub hub(&loop_, 256u << 10, 1u << 20);
  std::mutex mu;
  std::vector<std::string> got;
  hub.Subscribe("t", [&](const Frame& f) {
    std::lock_guard<std::mutex> lock(mu);
    got.push_back(f.payload);
  });
  ASSERT_TRUE(hub.Listen(0));

  const int fd = DialLoopbackBlocking(hub.port());
  ASSERT_GE(fd, 0);
  const std::string payload(1000, 'x');
  const std::string wire = EncodeFrame(Frame{2, "t:1", payload});

  // First half, pause, second half: the hub must hold the torn tail and
  // deliver exactly one frame once it completes.
  const size_t half = wire.size() / 2;
  ASSERT_EQ(write(fd, wire.data(), half), static_cast<ssize_t>(half));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(got.empty()) << "half a frame must not deliver";
  }
  ASSERT_EQ(write(fd, wire.data() + half, wire.size() - half),
            static_cast<ssize_t>(wire.size() - half));
  ASSERT_TRUE(WaitFor([&] {
    std::lock_guard<std::mutex> lock(mu);
    return got.size() == 1;
  }));
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(got[0], payload);
  }

  // Two frames in one write deliver as two, in order.
  std::string burst;
  AppendFrame(&burst, Frame{2, "t:2", "a"});
  AppendFrame(&burst, Frame{2, "t:3", "b"});
  ASSERT_EQ(write(fd, burst.data(), burst.size()),
            static_cast<ssize_t>(burst.size()));
  ASSERT_TRUE(WaitFor([&] {
    std::lock_guard<std::mutex> lock(mu);
    return got.size() == 3;
  }));
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(got[1], "a");
    EXPECT_EQ(got[2], "b");
  }
  close(fd);
  hub.Close();
}

TEST_F(FrameFixture, GarbageStreamDropsThePeer) {
  FrameHub hub(&loop_, 256u << 10, 1u << 20);
  ASSERT_TRUE(hub.Listen(0));
  const int fd = DialLoopbackBlocking(hub.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(WaitFor([&] { return hub.connections() == 1; }));
  // An impossible length prefix is protocol breakage: the hub closes the
  // connection instead of waiting for gigabytes.
  const char garbage[] = "\xff\xff\xff\xff garbage";
  ASSERT_EQ(write(fd, garbage, sizeof(garbage)),
            static_cast<ssize_t>(sizeof(garbage)));
  EXPECT_TRUE(WaitFor([&] { return hub.connections() == 0; }));
  close(fd);
  hub.Close();
}

TEST_F(FrameFixture, ClientReconnectsAndReplaysSubscriptions) {
  FrameHub hub(&loop_, 256u << 10, 1u << 20);
  ASSERT_TRUE(hub.Listen(0));
  const uint16_t port = hub.port();

  FrameClient client(&loop_, port, 5 * kMicrosPerMilli);
  std::mutex mu;
  std::vector<std::string> got;
  client.Subscribe("notif", [&](const Frame& f) {
    std::lock_guard<std::mutex> lock(mu);
    got.push_back(f.payload);
  });
  client.Connect();
  ASSERT_TRUE(WaitFor([&] { return hub.connections() == 1; }));
  hub.Send("notif:a", "before", 2);
  ASSERT_TRUE(WaitFor([&] {
    std::lock_guard<std::mutex> lock(mu);
    return got.size() == 1;
  }));

  // Hard reset: the hub goes away and comes back on the same port. The
  // client must redial on its backoff timer and replay its subscription
  // — deliveries resume without any re-Subscribe call.
  hub.Close();
  ASSERT_TRUE(WaitFor([&] { return !client.connected(); }));
  ASSERT_TRUE(hub.Listen(port));
  ASSERT_TRUE(WaitFor([&] { return hub.connections() == 1; }));
  EXPECT_GE(client.reconnects(), 1u);

  ASSERT_TRUE(WaitFor([&] {
    // The subscription replay races the Send; retry until it lands.
    hub.Send("notif:a", "after", 2);
    std::lock_guard<std::mutex> lock(mu);
    return got.size() >= 2;
  }));
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(got.back(), "after");
  }
  client.Close();
  hub.Close();
}

TEST_F(FrameFixture, SlowReaderShedsLowPriorityButKeepsCritical) {
  // Tiny soft limit so user-space buffering trips quickly once the
  // kernel socket buffers fill against a reader that never reads.
  const size_t kSoft = 4096;
  FrameHub hub(&loop_, kSoft, 1u << 20);
  ASSERT_TRUE(hub.Listen(0));

  const int fd = DialLoopbackBlocking(hub.port());
  ASSERT_GE(fd, 0);
  // Subscribe to "bp" via a raw control frame, then prove the
  // subscription landed by reading one ping back.
  const std::string sub =
      EncodeFrame(Frame{0, std::string(kSubscribeChannel), "bp"});
  ASSERT_EQ(write(fd, sub.data(), sub.size()), static_cast<ssize_t>(sub.size()));
  SetNonBlocking(fd);  // polled reads below; never block the test thread
  std::string ping_buf;
  ASSERT_TRUE(WaitFor([&] {
    hub.Send("bp:ping", "ping", 0);
    char buf[512];
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) ping_buf.append(buf, static_cast<size_t>(n));
    return !ping_buf.empty();
  }));

  // Stop reading entirely and flood with kNormal frames until the
  // write buffer passes the soft limit and sheds kick in.
  const std::string big(32 * 1024, 'z');
  ASSERT_TRUE(WaitFor([&] {
    for (int i = 0; i < 16; ++i) hub.Send("bp:flood", big, 2);
    (void)hub.connections();  // sync barrier: posted sends have run
    return hub.frames_shed_low_priority() > 0;
  }));
  EXPECT_GT(hub.frames_shed(), 0u);

  // Past the soft limit, a critical frame still queues: the shed
  // counters must not move when priority 0 is sent.
  const uint64_t shed_before = hub.frames_shed();
  hub.Send("bp:critical", "purge", 0);
  (void)hub.connections();
  EXPECT_EQ(hub.frames_shed(), shed_before);

  // And low-priority frames keep being shed (counted separately). The
  // socket can flush some backlog between sends, so poll: the buffer
  // refills past the soft limit and the low-priority counter moves.
  const uint64_t low_before = hub.frames_shed_low_priority();
  ASSERT_TRUE(WaitFor([&] {
    hub.Send("bp:flood", big, 2);
    (void)hub.connections();
    return hub.frames_shed_low_priority() > low_before;
  }));
  close(fd);
  hub.Close();
}

TEST_F(FrameFixture, SendWhileDisconnectedShedsInsteadOfBuffering) {
  // No hub listening at all: the client sheds (the reliable layer on
  // top owns retransmission) and reports it.
  FrameClient client(&loop_, 1, 5 * kMicrosPerMilli);  // port 1: never ours
  EXPECT_FALSE(client.Send("notif", "lost", 2));
  EXPECT_GE(client.frames_shed(), 1u);
  client.Close();
}

// ---------------------------------------------------------------------------
// Connection reset during a batched notify stream (reliable recovery)

TEST_F(FrameFixture, ConnectionResetDuringBatchedNotifyRedeliversExactlyOnce) {
  SystemClock clock;
  FrameHub hub(&loop_, 256u << 10, 1u << 20);

  // Receiver (origin side): frames arriving on the notifications queue
  // feed the local KV queue the ReliableReceiver drains; its acks go
  // back out over the hub.
  BridgedKvStore recv_kv(&clock, [&](const std::string& queue,
                                     const std::string& payload,
                                     uint8_t priority) {
    hub.Send(queue, payload, priority);
  });
  hub.Subscribe("notif", [&](const Frame& f) {
    recv_kv.Deliver(f.channel, f.payload);
  });
  ASSERT_TRUE(hub.Listen(0));
  const uint16_t port = hub.port();

  // Sender (worker side): pushes leave over the frame client; acks come
  // back via the subscription.
  EventLoop worker_loop;
  ASSERT_TRUE(worker_loop.Start());
  FrameClient client(&worker_loop, port, 5 * kMicrosPerMilli);
  BridgedKvStore send_kv(&clock, [&](const std::string& queue,
                                     const std::string& payload,
                                     uint8_t priority) {
    client.Send(queue, payload, priority);
  });
  client.Subscribe("notif:acks", [&](const Frame& f) {
    send_kv.Deliver(f.channel, f.payload);
  });
  client.Connect();
  ASSERT_TRUE(WaitFor([&] { return hub.connections() == 1; }));

  invalidb::ReliableOptions ropts;
  ropts.enabled = true;
  ropts.retransmit_timeout = 30 * kMicrosPerMilli;
  ropts.max_backoff = 200 * kMicrosPerMilli;
  invalidb::ReliableSender sender(&clock, &send_kv, "notif", "w1", ropts);
  invalidb::ReliableReceiver receiver(&recv_kv, "notif", ropts);

  std::mutex mu;
  std::vector<std::string> delivered;
  const auto pump = [&] {
    sender.Tick();
    receiver.Poll([&](const std::string& payload) {
      std::lock_guard<std::mutex> lock(mu);
      delivered.push_back(payload);
    });
  };

  // First half of the batch flows normally.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sender.Send("n" + std::to_string(i)).ok());
  }

  // Reset the connection mid-stream: the hub drops off the port, the
  // remaining sends shed at the frame client, then the hub returns.
  hub.Close();
  ASSERT_TRUE(WaitFor([&] { return !client.connected(); }));
  for (int i = 10; i < 20; ++i) {
    ASSERT_TRUE(sender.Send("n" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(hub.Listen(port));

  // The reliable sender's retransmit timer re-ships everything unacked
  // once the client redials; the receiver dedups anything that made it
  // through twice. Every notification arrives exactly once.
  ASSERT_TRUE(WaitFor(
      [&] {
        pump();
        std::lock_guard<std::mutex> lock(mu);
        return delivered.size() >= 20;
      },
      15000));
  // Let any trailing retransmits land, then assert exactly-once.
  for (int i = 0; i < 10; ++i) {
    pump();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(delivered.size(), 20u);
  std::set<std::string> unique(delivered.begin(), delivered.end());
  EXPECT_EQ(unique.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(unique.count("n" + std::to_string(i)), 1u) << i;
  }

  client.Close();
  worker_loop.Stop();
  hub.Close();
}

}  // namespace
}  // namespace quaestor::net
