// Multithreaded stress over the concurrent read path (tier2; run under
// TSan in CI): the striped web cache, the shared-lock table/database, and
// the server's memoized response bodies — all hammered at once by reader
// and writer threads.
//
// The invariants are chosen to be sound under any interleaving (no
// false positives):
//  - Cache: etags are globally unique and never reused, so after
//    Purge(key) completes, a Get(key) may never return the etag the entry
//    held before the purge — any re-insert carries a fresh etag.
//  - Server: every response body must satisfy
//    FromJson(body).ComputeEtag() == resp.etag, whether it was freshly
//    serialized or replayed from the body memo. A memo entry surviving
//    its etag would fail this immediately.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "core/query_result.h"
#include "core/server.h"
#include "db/database.h"
#include "db/query.h"
#include "db/update.h"
#include "db/value.h"
#include "webcache/web_cache.h"

namespace quaestor {
namespace {

constexpr int kThreads = 4;

// ---------------------------------------------------------------------------
// Web cache: concurrent Get/Put/Remove/Purge across shards
// ---------------------------------------------------------------------------

TEST(ConcurrencyStressTest, CacheHitNeverReturnsPurgedEtag) {
  SystemClock* clock = SystemClock::Default();
  webcache::InvalidationCache cache(clock, /*max_entries=*/4096,
                                    /*num_shards=*/8);
  ASSERT_GT(cache.num_shards(), 1u);
  constexpr int kKeys = 64;
  constexpr int kOpsPerThread = 8000;
  std::atomic<uint64_t> next_etag{1};

  auto key_of = [](uint64_t x) {
    return "k" + std::to_string(x % kKeys);
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint64_t x =
            static_cast<uint64_t>(i) * 2654435761u + t * 40503u;
        const std::string key = key_of(x);
        switch (x % 7) {
          case 0:
          case 1: {  // writer: fresh globally-unique etag
            const uint64_t etag =
                next_etag.fetch_add(1, std::memory_order_relaxed);
            cache.Put(key, "body-" + std::to_string(etag), etag,
                      (1 + x % 3) * kMicrosPerSecond);
            break;
          }
          case 2: {  // purger with the soundness check
            auto before = cache.GetEvenIfExpired(key);
            cache.Purge(key);
            if (before.has_value()) {
              auto after = cache.Get(key);
              if (after.has_value()) {
                // A hit after the purge must be a newer insert: etags are
                // never reused, so matching the pre-purge etag means the
                // purge failed to remove the entry.
                ASSERT_NE(after->etag, before->etag);
              }
            }
            break;
          }
          case 3:
            cache.Remove(key);
            break;
          case 4:
            (void)cache.GetEvenIfExpired(key);
            break;
          default: {
            auto hit = cache.Get(key);
            if (hit.has_value()) {
              // Entry integrity: body and etag were stored together.
              ASSERT_EQ(hit->body, "body-" + std::to_string(hit->etag));
            }
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const webcache::CacheStats s = cache.stats();
  EXPECT_GT(s.insertions, 0u);
  EXPECT_GT(cache.PurgeCount(), 0u);
  // Accounting stays coherent after the storm.
  EXPECT_LE(cache.Size(), 4096u);
  EXPECT_EQ(cache.Keys().size(), cache.Size());
}

TEST(ConcurrencyStressTest, CacheEvictionAndSweepUnderLoad) {
  SystemClock* clock = SystemClock::Default();
  webcache::ExpirationCache cache(clock, /*max_entries=*/256,
                                  /*num_shards=*/4);
  constexpr int kOpsPerThread = 6000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint64_t x =
            static_cast<uint64_t>(i) * 2654435761u + t * 97u;
        const std::string key = "e" + std::to_string(x % 2048);
        if (x % 3 == 0) {
          cache.Put(key, "v", x + 1, 1 + static_cast<Micros>(x % 100));
        } else {
          (void)cache.Get(key);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  // Capacity is enforced per shard: the global bound holds up to shard
  // skew, and never exceeds the configured total by more than the
  // per-shard rounding.
  EXPECT_LE(cache.Size(), 256u + cache.num_shards());
  const webcache::CacheStats s = cache.stats();
  EXPECT_GT(s.evictions + s.expired_evictions, 0u);
}

// ---------------------------------------------------------------------------
// Table/Database: shared-lock readers racing exclusive writers
// ---------------------------------------------------------------------------

TEST(ConcurrencyStressTest, TableReadersRaceWriters) {
  db::Database database(SystemClock::Default());
  db::Table* table = database.GetOrCreateTable("t");
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(database
                    .Insert("t", "d" + std::to_string(i),
                            db::Value::FromJson(
                                "{\"group\":" + std::to_string(i % 10) + "}")
                                .value())
                    .ok());
  }
  table->CreateIndex("group");
  auto query = db::Query::ParseJson("t", R"({"group":3})");
  ASSERT_TRUE(query.ok());

  constexpr int kOpsPerThread = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint64_t x =
            static_cast<uint64_t>(i) * 2654435761u + t * 7919u;
        const std::string id = "d" + std::to_string(x % 200);
        switch (x % 8) {
          case 0: {  // writer
            db::Update up;
            up.Set("views", db::Value(static_cast<int64_t>(x)));
            (void)database.Apply("t", id, up);
            break;
          }
          case 1:  // registry reader (+ occasional new table)
            ASSERT_NE(database.FindTable("t"), nullptr);
            break;
          case 2: {
            // Every doc an index plan returns must match the predicate.
            for (const db::Document& d : database.Execute(query.value())) {
              const db::Value* g = d.body.Find("group");
              ASSERT_NE(g, nullptr);
              ASSERT_EQ(g->as_int(), 3);
            }
            break;
          }
          case 3:
            (void)table->LiveCount();
            break;
          default: {
            auto doc = database.Get("t", id);
            ASSERT_TRUE(doc.ok());
            ASSERT_GT(doc->version, 0u);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const db::DatabaseStats s = database.stats();
  EXPECT_GT(s.updates, 0u);
  EXPECT_GT(s.reads, 0u);
  EXPECT_GT(s.queries, 0u);
  EXPECT_EQ(table->LiveCount(), 200u);
}

// ---------------------------------------------------------------------------
// Server: memoized bodies racing writes across all three layers
// ---------------------------------------------------------------------------

class ServerMemoStress : public ::testing::Test {
 protected:
  ServerMemoStress()
      : database_(SystemClock::Default()),
        server_(SystemClock::Default(), &database_) {
    for (int i = 0; i < 100; ++i) {
      db::Object o;
      o["group"] = db::Value(static_cast<int64_t>(i % 10));
      o["views"] = db::Value(static_cast<int64_t>(i));
      EXPECT_TRUE(server_
                      .Insert("posts", "p" + std::to_string(i),
                              db::Value(std::move(o)))
                      .ok());
    }
    for (int g = 0; g < 10; ++g) {
      auto q = db::Query::ParseJson("posts",
                                    "{\"group\":" + std::to_string(g) + "}");
      server_.RegisterQueryShape(q.value());
      query_keys_.push_back(q->NormalizedKey());
    }
  }

  db::Database database_;
  core::QuaestorServer server_;
  std::vector<std::string> query_keys_;
};

TEST_F(ServerMemoStress, BodiesConsistentWithEtagsUnderWrites) {
  constexpr int kOpsPerThread = 1200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint64_t x =
            static_cast<uint64_t>(i) * 2654435761u + t * 104729u;
        if (x % 12 == 11) {  // writer: bumps versions => etags => memo death
          db::Update up;
          up.Set("views", db::Value(static_cast<int64_t>(x)));
          (void)server_.Update("posts", "p" + std::to_string(x % 100), up);
          continue;
        }
        webcache::HttpRequest req;
        req.key = x % 3 == 0 ? "posts/p" + std::to_string(x % 100)
                             : query_keys_[x % query_keys_.size()];
        auto resp = server_.Fetch(req);
        ASSERT_TRUE(resp.ok);
        ASSERT_FALSE(resp.body.empty());
        if (req.key.rfind("q:", 0) == 0) {
          // The body (memoized or fresh) must hash to the etag served
          // with it — a memo entry outliving its etag fails here.
          auto parsed = core::QueryResponse::FromJson(resp.body);
          ASSERT_TRUE(parsed.ok()) << resp.body;
          ASSERT_EQ(parsed->ComputeEtag(), resp.etag);
        } else {
          // Record bodies must parse and carry the served version.
          auto doc = database_.Get("posts", req.key.substr(6));
          ASSERT_TRUE(db::Value::FromJson(resp.body).ok());
          ASSERT_TRUE(doc.ok());
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const core::ServerStats s = server_.stats();
  EXPECT_GT(s.body_memo_misses, 0u);
  EXPECT_GT(s.writes, 0u);
}

TEST_F(ServerMemoStress, MemoizedBodiesByteIdenticalToFresh) {
  // Quiescent read-only phase: the first fetch serializes and memoizes,
  // the second must replay the identical bytes (and count a memo hit).
  for (const std::string& key : query_keys_) {
    webcache::HttpRequest req;
    req.key = key;
    auto first = server_.Fetch(req);
    ASSERT_TRUE(first.ok);
    auto second = server_.Fetch(req);
    ASSERT_TRUE(second.ok);
    EXPECT_EQ(first.etag, second.etag);
    EXPECT_EQ(first.body, second.body);
    // And both match a from-scratch serialization of the parsed result.
    auto parsed = core::QueryResponse::FromJson(second.body);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->ToJson(), second.body);
  }
  const core::ServerStats s = server_.stats();
  EXPECT_GT(s.body_memo_hits, 0u);

  // A write kills exactly the touched memo entries: the next fetch of an
  // affected query is a memo miss with a new etag.
  webcache::HttpRequest req;
  req.key = query_keys_[0];
  auto before = server_.Fetch(req);
  db::Update up;
  up.Set("views", db::Value(static_cast<int64_t>(999999)));
  ASSERT_TRUE(server_.Update("posts", "p0", up).ok());
  auto after = server_.Fetch(req);
  ASSERT_TRUE(after.ok);
  EXPECT_NE(after.etag, before.etag);
  auto parsed = core::QueryResponse::FromJson(after.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ComputeEtag(), after.etag);
}

}  // namespace
}  // namespace quaestor
