#include <gtest/gtest.h>

#include "common/clock.h"
#include "db/database.h"
#include "db/table.h"

namespace quaestor::db {
namespace {

Value Doc(const char* json) {
  auto v = Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

Query Q(const char* table, const char* filter) {
  auto q = Query::ParseJson(table, filter);
  EXPECT_TRUE(q.ok());
  return q.value();
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(TableTest, InsertGetRoundTrip) {
  Table t("posts");
  auto ins = t.Insert("p1", Doc(R"({"title":"hello"})"), 100);
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins->version, 1u);
  EXPECT_EQ(ins->write_time, 100);
  EXPECT_EQ(ins->Key(), "posts/p1");

  auto got = t.Get("p1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->body.Find("title")->as_string(), "hello");
}

TEST(TableTest, InsertDuplicateFails) {
  Table t("posts");
  ASSERT_TRUE(t.Insert("p1", Doc("{}"), 1).ok());
  EXPECT_TRUE(t.Insert("p1", Doc("{}"), 2).status().IsAlreadyExists());
}

TEST(TableTest, InsertNonObjectFails) {
  Table t("posts");
  EXPECT_TRUE(t.Insert("p1", Value(5), 1).status().IsInvalidArgument());
}

TEST(TableTest, UpsertInsertsAndReplaces) {
  Table t("posts");
  auto first = t.Upsert("p1", Doc(R"({"v":1})"), 1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->version, 1u);
  auto second = t.Upsert("p1", Doc(R"({"v":2})"), 2);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->version, 2u);
  EXPECT_EQ(t.Get("p1")->body.Find("v")->as_int(), 2);
}

TEST(TableTest, ApplyUpdatesAndBumpsVersion) {
  Table t("posts");
  ASSERT_TRUE(t.Insert("p1", Doc(R"({"n":1})"), 1).ok());
  Update u;
  u.Inc("n", Value(1));
  auto updated = t.Apply("p1", u, 5);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->version, 2u);
  EXPECT_EQ(updated->write_time, 5);
  EXPECT_EQ(updated->body.Find("n")->as_int(), 2);
}

TEST(TableTest, ApplyMissingFails) {
  Table t("posts");
  Update u;
  u.Set("a", Value(1));
  EXPECT_TRUE(t.Apply("nope", u, 1).status().IsNotFound());
}

TEST(TableTest, DeleteTombstones) {
  Table t("posts");
  ASSERT_TRUE(t.Insert("p1", Doc("{}"), 1).ok());
  auto del = t.Delete("p1", 2);
  ASSERT_TRUE(del.ok());
  EXPECT_TRUE(del->deleted);
  EXPECT_EQ(del->version, 2u);
  EXPECT_TRUE(t.Get("p1").status().IsNotFound());
  EXPECT_TRUE(t.Delete("p1", 3).status().IsNotFound());
  EXPECT_EQ(t.LiveCount(), 0u);
}

TEST(TableTest, ReinsertAfterDeleteContinuesVersions) {
  Table t("posts");
  ASSERT_TRUE(t.Insert("p1", Doc("{}"), 1).ok());
  ASSERT_TRUE(t.Delete("p1", 2).ok());
  auto again = t.Insert("p1", Doc("{}"), 3);
  ASSERT_TRUE(again.ok());
  // Versions keep increasing across delete — caches can never confuse the
  // new incarnation with the old one.
  EXPECT_EQ(again->version, 3u);
}

TEST(TableTest, ExecuteFiltersAndSortsById) {
  Table t("posts");
  ASSERT_TRUE(t.Insert("b", Doc(R"({"g":1})"), 1).ok());
  ASSERT_TRUE(t.Insert("a", Doc(R"({"g":1})"), 1).ok());
  ASSERT_TRUE(t.Insert("c", Doc(R"({"g":2})"), 1).ok());
  auto res = t.Execute(Q("posts", R"({"g":1})"));
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(res[0].id, "a");
  EXPECT_EQ(res[1].id, "b");
}

TEST(TableTest, ExecuteOrderByLimitOffset) {
  Table t("posts");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t
                    .Insert("p" + std::to_string(i),
                            Doc(("{\"n\":" + std::to_string(i) + "}").c_str()),
                            1)
                    .ok());
  }
  Query q = Q("posts", "{}");
  q.SetOrderBy({{"n", false}}).SetLimit(3).SetOffset(2);
  auto res = t.Execute(q);
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0].body.Find("n")->as_int(), 7);  // 9,8 skipped by offset
  EXPECT_EQ(res[1].body.Find("n")->as_int(), 6);
  EXPECT_EQ(res[2].body.Find("n")->as_int(), 5);
}

TEST(TableTest, ExecuteOffsetPastEnd) {
  Table t("posts");
  ASSERT_TRUE(t.Insert("p1", Doc("{}"), 1).ok());
  Query q = Q("posts", "{}");
  q.SetOffset(10);
  EXPECT_TRUE(t.Execute(q).empty());
}

TEST(TableTest, ExecuteSkipsDeleted) {
  Table t("posts");
  ASSERT_TRUE(t.Insert("p1", Doc(R"({"g":1})"), 1).ok());
  ASSERT_TRUE(t.Insert("p2", Doc(R"({"g":1})"), 1).ok());
  ASSERT_TRUE(t.Delete("p1", 2).ok());
  auto res = t.Execute(Q("posts", R"({"g":1})"));
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].id, "p2");
}

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

TEST(DatabaseTest, CrudAcrossTables) {
  SimulatedClock clock(1000);
  Database db(&clock);
  ASSERT_TRUE(db.Insert("a", "1", Doc(R"({"x":1})")).ok());
  ASSERT_TRUE(db.Insert("b", "1", Doc(R"({"x":2})")).ok());
  EXPECT_EQ(db.Get("a", "1")->body.Find("x")->as_int(), 1);
  EXPECT_EQ(db.Get("b", "1")->body.Find("x")->as_int(), 2);
  EXPECT_TRUE(db.Get("c", "1").status().IsNotFound());
  EXPECT_EQ(db.TableNames().size(), 2u);
}

TEST(DatabaseTest, WriteTimesComeFromClock) {
  SimulatedClock clock(500);
  Database db(&clock);
  auto doc = db.Insert("t", "1", Doc("{}"));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->write_time, 500);
  clock.Advance(100);
  Update u;
  u.Set("a", Value(1));
  auto updated = db.Apply("t", "1", u);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->write_time, 600);
}

TEST(DatabaseTest, ChangeListenerReceivesAfterImages) {
  SimulatedClock clock(0);
  Database db(&clock);
  std::vector<ChangeEvent> events;
  db.AddChangeListener([&](const ChangeEvent& ev) { events.push_back(ev); });

  ASSERT_TRUE(db.Insert("t", "1", Doc(R"({"n":1})")).ok());
  Update u;
  u.Inc("n", Value(1));
  ASSERT_TRUE(db.Apply("t", "1", u).ok());
  ASSERT_TRUE(db.Delete("t", "1").ok());

  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, WriteKind::kInsert);
  EXPECT_EQ(events[0].after.body.Find("n")->as_int(), 1);
  EXPECT_EQ(events[1].kind, WriteKind::kUpdate);
  EXPECT_EQ(events[1].after.body.Find("n")->as_int(), 2);
  EXPECT_EQ(events[2].kind, WriteKind::kDelete);
  EXPECT_TRUE(events[2].after.deleted);
}

TEST(DatabaseTest, FailedWritesDoNotNotify) {
  SimulatedClock clock(0);
  Database db(&clock);
  int notifications = 0;
  db.AddChangeListener([&](const ChangeEvent&) { notifications++; });
  ASSERT_TRUE(db.Insert("t", "1", Doc("{}")).ok());
  EXPECT_FALSE(db.Insert("t", "1", Doc("{}")).ok());  // duplicate
  Update u;
  u.Set("a", Value(1));
  EXPECT_FALSE(db.Apply("t", "missing", u).ok());
  EXPECT_EQ(notifications, 1);
}

TEST(DatabaseTest, UpsertReportsKind) {
  SimulatedClock clock(0);
  Database db(&clock);
  std::vector<WriteKind> kinds;
  db.AddChangeListener(
      [&](const ChangeEvent& ev) { kinds.push_back(ev.kind); });
  ASSERT_TRUE(db.Upsert("t", "1", Doc("{}")).ok());
  ASSERT_TRUE(db.Upsert("t", "1", Doc("{}")).ok());
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], WriteKind::kInsert);
  EXPECT_EQ(kinds[1], WriteKind::kUpdate);
}

TEST(DatabaseTest, ExecuteOnMissingTableIsEmpty) {
  SimulatedClock clock(0);
  Database db(&clock);
  EXPECT_TRUE(db.Execute(Q("ghost", "{}")).empty());
}

TEST(DatabaseTest, StatsCountOperations) {
  SimulatedClock clock(0);
  Database db(&clock);
  ASSERT_TRUE(db.Insert("t", "1", Doc("{}")).ok());
  (void)db.Get("t", "1");
  (void)db.Execute(Q("t", "{}"));
  Update u;
  u.Set("a", Value(1));
  ASSERT_TRUE(db.Apply("t", "1", u).ok());
  ASSERT_TRUE(db.Delete("t", "1").ok());
  const DatabaseStats s = db.stats();
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.reads, 1u);
  EXPECT_EQ(s.queries, 1u);
  EXPECT_EQ(s.updates, 1u);
  EXPECT_EQ(s.deletes, 1u);
}

TEST(DatabaseTest, ShardAssignmentIsStable) {
  SimulatedClock clock(0);
  Database db(&clock, /*num_shards=*/4);
  EXPECT_EQ(db.num_shards(), 4u);
  const size_t shard = db.ShardOf("some-key");
  EXPECT_LT(shard, 4u);
  EXPECT_EQ(db.ShardOf("some-key"), shard);
}

TEST(DatabaseTest, ShardsRoughlyBalanced) {
  SimulatedClock clock(0);
  Database db(&clock, /*num_shards=*/4);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) {
    counts[db.ShardOf("key" + std::to_string(i))]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

}  // namespace
}  // namespace quaestor::db
