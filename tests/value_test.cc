#include <gtest/gtest.h>

#include "db/value.h"

namespace quaestor::db {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(nullptr).is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(42).is_int());
  EXPECT_TRUE(Value(int64_t{42}).is_int());
  EXPECT_TRUE(Value(3.14).is_double());
  EXPECT_TRUE(Value(42).is_number());
  EXPECT_TRUE(Value(3.14).is_number());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_TRUE(Value(Array{}).is_array());
  EXPECT_TRUE(Value(Object{}).is_object());

  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value(3.14).as_double(), 3.14);
  EXPECT_DOUBLE_EQ(Value(42).as_number(), 42.0);
  EXPECT_EQ(Value("hi").as_string(), "hi");
}

TEST(ValueTest, NumericEqualityAcrossIntDouble) {
  EXPECT_EQ(Value(1), Value(1.0));
  EXPECT_NE(Value(1), Value(1.5));
  EXPECT_EQ(Value(0), Value(0.0));
}

TEST(ValueTest, DeepEquality) {
  Object a;
  a["x"] = Value(1);
  a["y"] = Value(Array{Value("a"), Value("b")});
  Object b = a;
  EXPECT_EQ(Value(a), Value(b));
  b["y"].as_array().push_back(Value("c"));
  EXPECT_NE(Value(a), Value(b));
}

TEST(ValueTest, CompareTotalOrder) {
  // null < bool < number < string < array < object
  EXPECT_LT(Value::Compare(Value(), Value(false)), 0);
  EXPECT_LT(Value::Compare(Value(true), Value(0)), 0);
  EXPECT_LT(Value::Compare(Value(99), Value("a")), 0);
  EXPECT_LT(Value::Compare(Value("zzz"), Value(Array{})), 0);
  EXPECT_LT(Value::Compare(Value(Array{}), Value(Object{})), 0);

  EXPECT_LT(Value::Compare(Value(1), Value(2)), 0);
  EXPECT_GT(Value::Compare(Value(2.5), Value(2)), 0);
  EXPECT_EQ(Value::Compare(Value("abc"), Value("abc")), 0);
  EXPECT_LT(Value::Compare(Value("abc"), Value("abd")), 0);
}

TEST(ValueTest, CompareArraysLexicographically) {
  Array a{Value(1), Value(2)};
  Array b{Value(1), Value(3)};
  Array c{Value(1), Value(2), Value(0)};
  EXPECT_LT(Value::Compare(Value(a), Value(b)), 0);
  EXPECT_LT(Value::Compare(Value(a), Value(c)), 0);  // prefix < longer
}

TEST(ValueTest, FindDotPath) {
  auto v = Value::FromJson(
      R"({"author":{"name":"ada","langs":["c","lisp"]},"n":5})");
  ASSERT_TRUE(v.ok());
  const Value& root = v.value();
  ASSERT_NE(root.Find("author.name"), nullptr);
  EXPECT_EQ(root.Find("author.name")->as_string(), "ada");
  ASSERT_NE(root.Find("author.langs.1"), nullptr);
  EXPECT_EQ(root.Find("author.langs.1")->as_string(), "lisp");
  EXPECT_EQ(root.Find("author.missing"), nullptr);
  EXPECT_EQ(root.Find("author.langs.9"), nullptr);
  EXPECT_EQ(root.Find("n.x"), nullptr);  // traversing a scalar
  EXPECT_EQ(root.Find("n")->as_int(), 5);
}

TEST(ValueTest, SetPathCreatesIntermediates) {
  Value v = Object{};
  ASSERT_TRUE(v.SetPath("a.b.c", Value(7)).ok());
  ASSERT_NE(v.Find("a.b.c"), nullptr);
  EXPECT_EQ(v.Find("a.b.c")->as_int(), 7);
}

TEST(ValueTest, SetPathFailsThroughScalar) {
  Value v = Object{};
  ASSERT_TRUE(v.SetPath("a", Value(1)).ok());
  EXPECT_FALSE(v.SetPath("a.b", Value(2)).ok());
}

TEST(ValueTest, RemovePath) {
  Value v = Object{};
  ASSERT_TRUE(v.SetPath("a.b", Value(1)).ok());
  EXPECT_TRUE(v.RemovePath("a.b"));
  EXPECT_EQ(v.Find("a.b"), nullptr);
  EXPECT_NE(v.Find("a"), nullptr);  // parent remains
  EXPECT_FALSE(v.RemovePath("a.b"));  // already gone
  EXPECT_FALSE(v.RemovePath("zzz"));
}

// ---------------------------------------------------------------------------
// JSON round-trips (parameterized)
// ---------------------------------------------------------------------------

class JsonRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTripTest, ParseSerializeParse) {
  auto first = Value::FromJson(GetParam());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const std::string serialized = first->ToJson();
  auto second = Value::FromJson(serialized);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first.value(), second.value());
  // Canonical form is a fixed point.
  EXPECT_EQ(serialized, second->ToJson());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, JsonRoundTripTest,
    ::testing::Values(
        "null", "true", "false", "0", "-1", "42", "3.5", "-2.25", "1e10",
        "\"\"", "\"hello\"", "\"with \\\"quotes\\\"\"",
        "\"tab\\tnewline\\n\"", "[]", "[1,2,3]", "[[1],[2,[3]]]",
        "{}", "{\"a\":1}", "{\"a\":{\"b\":[1,2,{\"c\":null}]}}",
        "{\"z\":1,\"a\":2}", "[1,\"two\",3.5,null,true,{}]",
        "9223372036854775807", "{\"unicode\":\"\\u00e9\\u4e2d\"}"));

TEST(JsonTest, CanonicalObjectKeysSorted) {
  auto v = Value::FromJson(R"({"z":1,"a":2,"m":3})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToJson(), R"({"a":2,"m":3,"z":1})");
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(Value::FromJson("").ok());
  EXPECT_FALSE(Value::FromJson("{").ok());
  EXPECT_FALSE(Value::FromJson("[1,").ok());
  EXPECT_FALSE(Value::FromJson("{\"a\"}").ok());
  EXPECT_FALSE(Value::FromJson("{\"a\":1,}").ok());
  EXPECT_FALSE(Value::FromJson("tru").ok());
  EXPECT_FALSE(Value::FromJson("\"unterminated").ok());
  EXPECT_FALSE(Value::FromJson("1 2").ok());
  EXPECT_FALSE(Value::FromJson("nulll").ok());
}

TEST(JsonTest, ParsesNestedWhitespace) {
  auto v = Value::FromJson("  { \"a\" : [ 1 , 2 ] , \"b\" : null }  ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("a.0")->as_int(), 1);
}

TEST(JsonTest, IntegerPreservation) {
  auto v = Value::FromJson("9007199254740993");  // > 2^53: double would lose it
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_int());
  EXPECT_EQ(v->as_int(), 9007199254740993LL);
}

TEST(JsonTest, DoubleRoundTripsShortest) {
  Value v(0.1);
  EXPECT_EQ(v.ToJson(), "0.1");
  auto parsed = Value::FromJson("0.1");
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->as_double(), 0.1);
}

TEST(JsonTest, EscapedControlCharacters) {
  Value v(std::string("a\x01z"));
  const std::string json = v.ToJson();
  auto parsed = Value::FromJson(json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), v);
}

}  // namespace
}  // namespace quaestor::db
