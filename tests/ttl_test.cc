#include <gtest/gtest.h>

#include <cmath>

#include "common/clock.h"
#include "ttl/active_list.h"
#include "ttl/capacity_manager.h"
#include "ttl/representation.h"
#include "ttl/ttl_estimator.h"

namespace quaestor::ttl {
namespace {

constexpr Micros kSecond = kMicrosPerSecond;

// ---------------------------------------------------------------------------
// WriteRateEstimator
// ---------------------------------------------------------------------------

TEST(WriteRateTest, UnknownKeyHasZeroRate) {
  SimulatedClock clock(0);
  WriteRateEstimator est(&clock, TtlOptions());
  EXPECT_DOUBLE_EQ(est.RateOf("never-written"), 0.0);
}

TEST(WriteRateTest, RateMatchesWriteFrequency) {
  SimulatedClock clock(0);
  TtlOptions opts;
  opts.rate_window = 60 * kSecond;
  WriteRateEstimator est(&clock, opts);
  // 1 write per second for 30 seconds. The rate is estimated over the
  // observed sample span (30 s), not the full 60 s window — the true
  // write frequency, regardless of how much window remains unobserved.
  for (int i = 0; i < 30; ++i) {
    est.RecordWrite("k");
    clock.Advance(1 * kSecond);
  }
  const double per_second = est.RateOf("k") * kSecond;
  EXPECT_NEAR(per_second, 1.0, 0.1);
}

TEST(WriteRateTest, PartialRingUsesObservedSpan) {
  // Regression: with fewer samples than the ring capacity, RateOf used
  // the full-window denominator, grossly underestimating bursty writers
  // (7 writes 1 s apart over a 100 s window read as 0.07/s, then jumped
  // 16× the moment the 8th write filled the ring).
  SimulatedClock clock(0);
  TtlOptions opts;
  opts.max_samples_per_key = 8;
  opts.rate_window = 100 * kSecond;
  WriteRateEstimator est(&clock, opts);
  for (int i = 0; i < 7; ++i) {
    est.RecordWrite("k");
    clock.Advance(1 * kSecond);
  }
  const double per_second = est.RateOf("k") * kSecond;
  EXPECT_GT(per_second, 0.5);
  EXPECT_NEAR(per_second, 1.0, 0.3);
}

TEST(WriteRateTest, RateStaysContinuousAsSamplesExpire) {
  // Regression: the estimator must not jump discontinuously when a
  // sample ages out of the window. Writes at t = 0..7 s, window 10 s:
  // just before t = 10 s all 8 samples count; just after, the t = 0
  // sample expires. Both sides use the observed-span denominator, so the
  // rate moves by a few percent — not the 12%+ cliff the old
  // window-denominator fallback produced.
  SimulatedClock clock(0);
  TtlOptions opts;
  opts.max_samples_per_key = 8;
  opts.rate_window = 10 * kSecond;
  WriteRateEstimator est(&clock, opts);
  for (int i = 0; i < 8; ++i) {
    est.RecordWrite("k");
    clock.Advance(1 * kSecond);
  }
  clock.SetTime(static_cast<Micros>(9.99 * kSecond));
  const double before = est.RateOf("k") * kSecond;
  clock.SetTime(static_cast<Micros>(10.01 * kSecond));
  const double after = est.RateOf("k") * kSecond;
  ASSERT_GT(before, 0.0);
  ASSERT_GT(after, 0.0);
  EXPECT_LT(std::abs(after - before) / before, 0.05);
}

TEST(WriteRateTest, SingleSampleFallsBackToWindow) {
  SimulatedClock clock(0);
  TtlOptions opts;
  opts.rate_window = 10 * kSecond;
  WriteRateEstimator est(&clock, opts);
  est.RecordWrite("k");
  clock.Advance(1 * kSecond);
  // One sample has no observable span; the window is the only defensible
  // denominator.
  EXPECT_DOUBLE_EQ(est.RateOf("k") * kSecond, 0.1);
}

TEST(WriteRateTest, OldWritesAgeOut) {
  SimulatedClock clock(0);
  TtlOptions opts;
  opts.rate_window = 10 * kSecond;
  WriteRateEstimator est(&clock, opts);
  est.RecordWrite("k");
  clock.Advance(20 * kSecond);
  EXPECT_DOUBLE_EQ(est.RateOf("k"), 0.0);
}

TEST(WriteRateTest, SumRateAddsAcrossKeys) {
  SimulatedClock clock(0);
  TtlOptions opts;
  opts.rate_window = 10 * kSecond;
  WriteRateEstimator est(&clock, opts);
  est.RecordWrite("a");
  est.RecordWrite("a");
  est.RecordWrite("b");
  const double sum = est.SumRate({"a", "b", "c"});
  EXPECT_NEAR(sum, est.RateOf("a") + est.RateOf("b"), 1e-12);
  EXPECT_GT(sum, 0.0);
  EXPECT_EQ(est.TrackedKeys(), 2u);
}

TEST(WriteRateTest, FullRingUsesObservedSpan) {
  SimulatedClock clock(0);
  TtlOptions opts;
  opts.max_samples_per_key = 8;
  opts.rate_window = 1000 * kSecond;
  WriteRateEstimator est(&clock, opts);
  // High-frequency writer: 10 writes/s, ring holds only 8 samples.
  for (int i = 0; i < 100; ++i) {
    est.RecordWrite("hot");
    clock.Advance(kSecond / 10);
  }
  const double per_second = est.RateOf("hot") * kSecond;
  EXPECT_NEAR(per_second, 10.0, 2.0);
}

// ---------------------------------------------------------------------------
// Quantile formula (Equation 1)
// ---------------------------------------------------------------------------

TEST(TtlEstimatorTest, QuantileFormula) {
  SimulatedClock clock(0);
  TtlOptions opts;
  opts.quantile = 0.5;
  opts.min_ttl = 0;
  opts.max_ttl = 1000000 * kSecond;
  TtlEstimator est(&clock, opts);
  // λ = 1 event/second → median inter-arrival = ln(2) seconds.
  const double lambda = 1.0 / static_cast<double>(kSecond);
  const Micros ttl = est.QuantileTtl(lambda);
  EXPECT_NEAR(MicrosToSeconds(ttl), std::log(2.0), 1e-6);
}

TEST(TtlEstimatorTest, HigherQuantileGivesLongerTtl) {
  SimulatedClock clock(0);
  TtlOptions low;
  low.quantile = 0.3;
  TtlOptions high;
  high.quantile = 0.9;
  TtlEstimator le(&clock, low);
  TtlEstimator he(&clock, high);
  const double lambda = 1.0 / static_cast<double>(kSecond);
  EXPECT_LT(le.QuantileTtl(lambda), he.QuantileTtl(lambda));
}

TEST(TtlEstimatorTest, ZeroRateGivesMaxTtl) {
  SimulatedClock clock(0);
  TtlOptions opts;
  TtlEstimator est(&clock, opts);
  EXPECT_EQ(est.QuantileTtl(0.0), opts.max_ttl);
  EXPECT_EQ(est.RecordTtl("never-written"), opts.max_ttl);
}

TEST(TtlEstimatorTest, TtlClampedToBounds) {
  SimulatedClock clock(0);
  TtlOptions opts;
  opts.min_ttl = 2 * kSecond;
  opts.max_ttl = 100 * kSecond;
  TtlEstimator est(&clock, opts);
  // Enormous rate → tiny raw TTL → clamped up to min.
  EXPECT_EQ(est.QuantileTtl(1.0), opts.min_ttl);
}

TEST(TtlEstimatorTest, HotterRecordsGetShorterTtls) {
  SimulatedClock clock(0);
  TtlOptions opts;
  opts.min_ttl = 0;
  TtlEstimator est(&clock, opts);
  for (int i = 0; i < 20; ++i) {
    est.RecordWrite("hot");
    if (i % 4 == 0) est.RecordWrite("warm");
    clock.Advance(1 * kSecond);
  }
  EXPECT_LT(est.RecordTtl("hot"), est.RecordTtl("warm"));
  EXPECT_LT(est.RecordTtl("warm"), est.RecordTtl("cold"));
}

// ---------------------------------------------------------------------------
// Query TTLs: min-of-exponentials + EWMA (Equation 2)
// ---------------------------------------------------------------------------

TEST(TtlEstimatorTest, QueryTtlUsesSummedRates) {
  SimulatedClock clock(0);
  TtlOptions opts;
  opts.min_ttl = 0;
  TtlEstimator est(&clock, opts);
  for (int i = 0; i < 10; ++i) {
    est.RecordWrite("a");
    est.RecordWrite("b");
    clock.Advance(1 * kSecond);
  }
  // λ_min = λ_a + λ_b, so the query TTL is below each member's TTL.
  const Micros q = est.QueryTtl("q:t?x", {"a", "b"});
  EXPECT_LT(q, est.RecordTtl("a"));
  EXPECT_LT(q, est.RecordTtl("b"));
}

TEST(TtlEstimatorTest, EmptyResultGetsMaxTtl) {
  SimulatedClock clock(0);
  TtlOptions opts;
  TtlEstimator est(&clock, opts);
  EXPECT_EQ(est.QueryTtl("q:t?x", {}), opts.max_ttl);
}

TEST(TtlEstimatorTest, EwmaMovesTowardActualTtl) {
  SimulatedClock clock(0);
  TtlOptions opts;
  opts.ewma_alpha = 0.7;
  opts.min_ttl = 0;
  TtlEstimator est(&clock, opts);
  // First invalidation seeds the estimate.
  est.OnQueryInvalidated("q", 100 * kSecond);
  const Micros first = est.QueryTtl("q", {});
  EXPECT_EQ(first, 100 * kSecond);
  // Feedback of a much shorter actual TTL pulls the estimate down:
  // ttl = 0.7·100 + 0.3·10 = 73 s.
  est.OnQueryInvalidated("q", 10 * kSecond);
  EXPECT_NEAR(MicrosToSeconds(est.QueryTtl("q", {})), 73.0, 0.5);
}

TEST(TtlEstimatorTest, EwmaConvergesToTrueTtl) {
  SimulatedClock clock(0);
  TtlOptions opts;
  opts.ewma_alpha = 0.7;
  opts.min_ttl = 0;
  TtlEstimator est(&clock, opts);
  est.OnQueryInvalidated("q", 500 * kSecond);
  for (int i = 0; i < 40; ++i) est.OnQueryInvalidated("q", 20 * kSecond);
  EXPECT_NEAR(MicrosToSeconds(est.QueryTtl("q", {})), 20.0, 1.0);
}

TEST(TtlEstimatorTest, EwmaStateStoresRawObservations) {
  // Regression: the seed observation was clamped to max_ttl while later
  // observations folded in raw, so Eq. (2) mixed scales. With raw state,
  // observations [1000, 1000, 0, 0] (max_ttl 600 s) must leave the EWMA
  // at 0.7²·1000 = 490 s — under the cap, so the clamp-on-issue is a
  // no-op and any residue of the old seeded clamp (0.7²·600 = 294 s)
  // is visible.
  SimulatedClock clock(0);
  TtlOptions opts;
  opts.ewma_alpha = 0.7;
  opts.min_ttl = 0;
  opts.max_ttl = 600 * kSecond;
  TtlEstimator est(&clock, opts);
  est.OnQueryInvalidated("q", 1000 * kSecond);
  est.OnQueryInvalidated("q", 1000 * kSecond);
  est.OnQueryInvalidated("q", 0);
  est.OnQueryInvalidated("q", 0);
  EXPECT_NEAR(MicrosToSeconds(est.QueryTtl("q", {})), 490.0, 1.0);
}

TEST(TtlEstimatorTest, EwmaConvergesIdenticallyRegardlessOfOrder) {
  // Regression: because only the first observation was clamped, two
  // estimators fed the same observations in different orders diverged.
  // Both sequences below have the same out-of-range observation; with
  // raw state both issue the (clamped) max_ttl.
  SimulatedClock clock(0);
  TtlOptions opts;
  opts.ewma_alpha = 0.7;
  opts.min_ttl = 0;
  opts.max_ttl = 600 * kSecond;

  TtlEstimator first_high(&clock, opts);
  first_high.OnQueryInvalidated("q", 2000 * kSecond);
  first_high.OnQueryInvalidated("q", 10 * kSecond);

  TtlEstimator first_low(&clock, opts);
  first_low.OnQueryInvalidated("q", 10 * kSecond);
  first_low.OnQueryInvalidated("q", 2000 * kSecond);

  // EWMA states: 0.7·2000 + 0.3·10 = 1403 vs 0.7·10 + 0.3·2000 = 607 —
  // both above max_ttl, so both must issue exactly the cap. (Pre-fix,
  // first_high seeded at the clamp: 0.7·600 + 0.3·10 = 423 s ≠ 600 s.)
  EXPECT_EQ(first_high.QueryTtl("q", {}), opts.max_ttl);
  EXPECT_EQ(first_low.QueryTtl("q", {}), opts.max_ttl);
}

TEST(TtlEstimatorTest, ForgetDropsEwmaState) {
  SimulatedClock clock(0);
  TtlOptions opts;
  TtlEstimator est(&clock, opts);
  est.OnQueryInvalidated("q", 10 * kSecond);
  EXPECT_EQ(est.TrackedQueries(), 1u);
  est.Forget("q");
  EXPECT_EQ(est.TrackedQueries(), 0u);
  EXPECT_EQ(est.QueryTtl("q", {}), opts.max_ttl);  // back to initial model
}

TEST(TtlEstimatorTest, NegativeActualTtlTreatedAsZero) {
  SimulatedClock clock(0);
  TtlOptions opts;
  TtlEstimator est(&clock, opts);
  est.OnQueryInvalidated("q", -5);
  EXPECT_GE(est.QueryTtl("q", {}), opts.min_ttl);
}

// ---------------------------------------------------------------------------
// ActiveList
// ---------------------------------------------------------------------------

TEST(ActiveListTest, ReadThenInvalidationYieldsActualTtl) {
  ActiveList list;
  list.OnRead("q", /*read_time=*/10 * kSecond, /*ttl=*/60 * kSecond);
  auto actual = list.OnInvalidation("q", 25 * kSecond);
  ASSERT_TRUE(actual.has_value());
  EXPECT_EQ(*actual, 15 * kSecond);
}

TEST(ActiveListTest, SecondInvalidationWithoutReadIsSuppressed) {
  ActiveList list;
  list.OnRead("q", 10 * kSecond, 60 * kSecond);
  ASSERT_TRUE(list.OnInvalidation("q", 20 * kSecond).has_value());
  // The result is already stale; further writes carry no TTL signal.
  EXPECT_FALSE(list.OnInvalidation("q", 30 * kSecond).has_value());
  // A new read re-arms the measurement.
  list.OnRead("q", 40 * kSecond, 60 * kSecond);
  auto actual = list.OnInvalidation("q", 45 * kSecond);
  ASSERT_TRUE(actual.has_value());
  EXPECT_EQ(*actual, 5 * kSecond);
}

TEST(ActiveListTest, InvalidationOfUnknownQueryIsNull) {
  ActiveList list;
  EXPECT_FALSE(list.OnInvalidation("q", 10).has_value());
}

TEST(ActiveListTest, RegistrationFlag) {
  ActiveList list;
  EXPECT_FALSE(list.IsRegistered("q"));
  list.SetRegistered("q", true);
  EXPECT_TRUE(list.IsRegistered("q"));
  list.SetRegistered("q", false);
  EXPECT_FALSE(list.IsRegistered("q"));
}

TEST(ActiveListTest, CountersAccumulate) {
  ActiveList list;
  list.OnRead("q", 1, 10);
  list.OnRead("q", 2, 10);
  (void)list.OnInvalidation("q", 3);
  auto entry = list.Find("q");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->read_count, 2u);
  EXPECT_EQ(entry->invalidation_count, 1u);
}

TEST(ActiveListTest, EraseAndSize) {
  ActiveList list;
  list.OnRead("a", 1, 10);
  list.OnRead("b", 1, 10);
  EXPECT_EQ(list.Size(), 2u);
  list.Erase("a");
  EXPECT_EQ(list.Size(), 1u);
  EXPECT_FALSE(list.Find("a").has_value());
  EXPECT_EQ(list.Snapshot().size(), 1u);
}

// ---------------------------------------------------------------------------
// CapacityManager
// ---------------------------------------------------------------------------

TEST(CapacityTest, UnlimitedAdmitsEverything) {
  CapacityManager cap(0);
  std::optional<std::string> evicted;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(cap.Admit("q" + std::to_string(i), &evicted));
    EXPECT_FALSE(evicted.has_value());
  }
  EXPECT_EQ(cap.AdmittedCount(), 100u);
}

TEST(CapacityTest, AdmitsUpToCapacity) {
  CapacityManager cap(2);
  std::optional<std::string> evicted;
  EXPECT_TRUE(cap.Admit("a", &evicted));
  EXPECT_TRUE(cap.Admit("b", &evicted));
  EXPECT_EQ(cap.AdmittedCount(), 2u);
  // A third query with zero reads cannot displace anyone.
  EXPECT_FALSE(cap.Admit("c", &evicted));
}

TEST(CapacityTest, HotterQueryDisplacesColder) {
  CapacityManager cap(2);
  std::optional<std::string> evicted;
  cap.OnRead("a");
  ASSERT_TRUE(cap.Admit("a", &evicted));
  cap.OnRead("b");
  ASSERT_TRUE(cap.Admit("b", &evicted));
  // "c" becomes much hotter than "a" and "b".
  for (int i = 0; i < 10; ++i) cap.OnRead("c");
  EXPECT_TRUE(cap.Admit("c", &evicted));
  ASSERT_TRUE(evicted.has_value());
  EXPECT_TRUE(*evicted == "a" || *evicted == "b");
  EXPECT_EQ(cap.AdmittedCount(), 2u);
  EXPECT_TRUE(cap.IsAdmitted("c"));
  EXPECT_FALSE(cap.IsAdmitted(*evicted));
}

TEST(CapacityTest, InvalidationsLowerScore) {
  CapacityManager cap(0);
  for (int i = 0; i < 10; ++i) cap.OnRead("q");
  const double before = cap.ScoreOf("q");
  std::optional<std::string> evicted;
  ASSERT_TRUE(cap.Admit("q", &evicted));
  for (int i = 0; i < 9; ++i) cap.OnInvalidation("q");
  EXPECT_LT(cap.ScoreOf("q"), before);
  EXPECT_NEAR(cap.ScoreOf("q"), 1.0, 1e-9);  // 10 reads / (1 + 9)
}

TEST(CapacityTest, FrequentlyInvalidatedQueryLosesSlot) {
  CapacityManager cap(1);
  std::optional<std::string> evicted;
  cap.OnRead("churny");
  ASSERT_TRUE(cap.Admit("churny", &evicted));
  for (int i = 0; i < 50; ++i) cap.OnInvalidation("churny");
  cap.OnRead("stable");
  cap.OnRead("stable");
  EXPECT_TRUE(cap.Admit("stable", &evicted));
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, "churny");
}

TEST(CapacityTest, RemoveFreesSlot) {
  CapacityManager cap(1);
  std::optional<std::string> evicted;
  ASSERT_TRUE(cap.Admit("a", &evicted));
  cap.Remove("a");
  EXPECT_EQ(cap.AdmittedCount(), 0u);
  EXPECT_TRUE(cap.Admit("b", &evicted));
}

TEST(CapacityTest, AdmitIsIdempotent) {
  CapacityManager cap(1);
  std::optional<std::string> evicted;
  ASSERT_TRUE(cap.Admit("a", &evicted));
  ASSERT_TRUE(cap.Admit("a", &evicted));
  EXPECT_EQ(cap.AdmittedCount(), 1u);
}

// ---------------------------------------------------------------------------
// Representation decision
// ---------------------------------------------------------------------------

TEST(RepresentationTest, StableResultPrefersObjectList) {
  RepresentationCosts costs;
  costs.result_size = 10;
  costs.record_hit_rate = 0.5;
  costs.change_rate = 0.0;  // never changes in place
  costs.membership_rate = 0.0;
  EXPECT_EQ(ChooseRepresentation(costs), ResultRepresentation::kObjectList);
}

TEST(RepresentationTest, ChurningWellCachedRecordsPreferIdList) {
  RepresentationCosts costs;
  costs.result_size = 10;
  costs.read_rate = 50.0;        // hot query
  costs.record_hit_rate = 0.99;  // records nearly always cached
  costs.change_rate = 5.0;       // frequent in-place changes
  costs.membership_rate = 0.1;
  EXPECT_EQ(ChooseRepresentation(costs), ResultRepresentation::kIdList);
}

TEST(RepresentationTest, ExpensiveAssemblyPrefersObjectList) {
  RepresentationCosts costs;
  costs.result_size = 50;
  costs.read_rate = 100.0;
  costs.record_hit_rate = 0.0;  // every assembly pays the miss latency
  costs.record_miss_latency_ms = 145.0;  // no CDN: full round-trip
  costs.change_rate = 0.05;  // rare in-place changes
  costs.membership_rate = 0.0;
  EXPECT_EQ(ChooseRepresentation(costs), ResultRepresentation::kObjectList);
}

TEST(RepresentationTest, MembershipChangesCancelOut) {
  // Membership changes invalidate both representations; with an empty
  // result the assembly penalty vanishes, so the costs are identical.
  RepresentationCosts costs;
  costs.result_size = 0;
  costs.change_rate = 0.0;
  costs.membership_rate = 100.0;
  EXPECT_DOUBLE_EQ(RepresentationCostDelta(costs), 0.0);
}

TEST(RepresentationTest, HigherReadRateAmortizesInvalidations) {
  // The same churn matters less for a hotter query: invalidation cost is
  // paid once but amortized over more reads.
  RepresentationCosts cold;
  cold.result_size = 10;
  cold.read_rate = 1.0;
  cold.change_rate = 1.0;
  RepresentationCosts hot = cold;
  hot.read_rate = 1000.0;
  EXPECT_GT(RepresentationCostDelta(cold), RepresentationCostDelta(hot));
}

}  // namespace
}  // namespace quaestor::ttl
